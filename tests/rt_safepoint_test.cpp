//===- rt_safepoint_test.cpp - Safepoint handshake semantics ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The stop-the-world contract (DESIGN.md §11): a mutator inside a
// rt::callNative body holds off the GC pause until it reaches a
// checkpoint; once the pause is granted the world is actually stopped
// (zero payload writes land while it holds); time-to-safepoint is
// observable in rt/gc/ttsp_nanos; and the OOM-retry path in the object
// factory returns null instead of rooting a dead allocation. Runs under
// TSan in CI.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Runtime.h"
#include "mte4jni/rt/Trampoline.h"
#include "mte4jni/support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

RuntimeConfig plainConfig() {
  RuntimeConfig C;
  C.Heap.CapacityBytes = 16 << 20;
  return C;
}

// A thread parked inside a native method body (no checkpoint) must block
// the pause; the collector may only finish after the body exits.
TEST(RtSafepoint, NativeCallBlocksPauseUntilBodyExits) {
  Runtime RT(plainConfig());

  std::atomic<bool> InBody{false};
  std::atomic<bool> ReleaseBody{false};
  std::atomic<bool> GcDone{false};

  std::thread Mutator([&] {
    JavaThread &Self = RT.attachCurrentThread("mutator");
    callNative(Self, NativeKind::Regular, "parked_native", [&] {
      InBody.store(true);
      // Deliberately no safepointPoll(): this body never reaches a
      // checkpoint, so the world cannot stop while it runs.
      while (!ReleaseBody.load())
        std::this_thread::yield();
      return 0;
    });
    RT.detachCurrentThread();
  });
  while (!InBody.load())
    std::this_thread::yield();

  std::thread Collector([&] {
    RT.attachCurrentThread("gc", ThreadKind::GcSupport);
    RT.gc().collect();
    GcDone.store(true);
    RT.detachCurrentThread();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(GcDone.load())
      << "the pause began while a native body held the world";

  ReleaseBody.store(true);
  Mutator.join();
  Collector.join();
  EXPECT_TRUE(GcDone.load());
}

// A long native section that does poll lets the pause through promptly:
// the collector finishes while the body is still running.
TEST(RtSafepoint, SafepointPollUnblocksPauseMidBody) {
  Runtime RT(plainConfig());

  support::MetricsSnapshot Before = support::Metrics::snapshot();
  std::atomic<bool> InBody{false};
  std::atomic<bool> GcDone{false};

  std::thread Mutator([&] {
    JavaThread &Self = RT.attachCurrentThread("scanner");
    callNative(Self, NativeKind::Regular, "polling_scan", [&] {
      InBody.store(true);
      // Model a long per-char scan: checkpoint every iteration until the
      // collector reports completion — the body is still mid-"scan" when
      // the world stops.
      while (!GcDone.load()) {
        RT.safepointPoll();
        std::this_thread::yield();
      }
      return 0;
    });
    RT.detachCurrentThread();
  });
  while (!InBody.load())
    std::this_thread::yield();

  std::thread Collector([&] {
    RT.attachCurrentThread("gc", ThreadKind::GcSupport);
    RT.gc().collect();
    GcDone.store(true);
    RT.detachCurrentThread();
  });
  Collector.join();
  Mutator.join();

  EXPECT_TRUE(GcDone.load());
  EXPECT_GT(RT.gc().completedCycles(), 0u);
  support::MetricsSnapshot After = support::Metrics::snapshot();
  EXPECT_GT(After.counterValue("rt/gc/safepoint_blocks"),
            Before.counterValue("rt/gc/safepoint_blocks"))
      << "the poll must have taken its parking slow path at least once";
}

// The granted pause actually stops the world: with writer threads
// hammering payloads through callNative, two checksums taken inside one
// pause window must be identical.
TEST(RtSafepoint, PausedWorldSeesNoPayloadWrites) {
  Runtime RT(plainConfig());
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    constexpr unsigned kWriters = 4;
    constexpr unsigned kLen = 512;
    std::vector<ObjectHeader *> Arrays;
    for (unsigned W = 0; W < kWriters; ++W)
      Arrays.push_back(RT.newPrimArray(Scope, PrimType::Int, kLen));

    std::atomic<bool> Stop{false};
    std::atomic<uint32_t> Running{0};
    std::vector<std::thread> Writers;
    for (unsigned W = 0; W < kWriters; ++W)
      Writers.emplace_back([&, W] {
        JavaThread &Self = RT.attachCurrentThread("writer");
        Running.fetch_add(1);
        uint32_t Tick = 1;
        while (!Stop.load()) {
          callNative(Self, NativeKind::Regular, "writer", [&] {
            int32_t *Data = arrayData<int32_t>(Arrays[W]);
            for (unsigned I = 0; I < kLen; ++I)
              Data[I] = static_cast<int32_t>(Tick + I);
            return 0;
          });
          ++Tick;
        }
        RT.detachCurrentThread();
      });
    while (Running.load() != kWriters)
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    auto ChecksumAll = [&] {
      uint64_t Sum = 0;
      for (ObjectHeader *A : Arrays) {
        const int32_t *Data = arrayData<int32_t>(A);
        for (unsigned I = 0; I < kLen; ++I)
          Sum = Sum * 1099511628211ull + static_cast<uint32_t>(Data[I]);
      }
      return Sum;
    };

    for (int Round = 0; Round < 5; ++Round) {
      RT.beginPause();
      uint64_t First = ChecksumAll();
      // Give any in-flight writer ample time to land a write if the
      // handshake were leaky.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      uint64_t Second = ChecksumAll();
      RT.endPause();
      EXPECT_EQ(First, Second)
          << "a payload write landed inside the paused window";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    Stop.store(true);
    for (auto &Th : Writers)
      Th.join();
  }
  RT.detachCurrentThread();
}

// Time-to-safepoint is measured and visible: a mutator holding a critical
// section for ~10ms forces a pause request to wait, and the wait shows up
// in the rt/gc/ttsp_nanos histogram.
TEST(RtSafepoint, TtspRecordsLongCriticalHoldout) {
  Runtime RT(plainConfig());
  support::MetricsSnapshot Before = support::Metrics::snapshot();
  const support::HistogramSample *TtspBefore =
      Before.histogram("rt/gc/ttsp_nanos");
  const uint64_t CountBefore = TtspBefore ? TtspBefore->Count : 0;
  const uint64_t SumBefore = TtspBefore ? TtspBefore->Sum : 0;

  std::atomic<bool> InCritical{false};
  std::thread Holder([&] {
    RT.attachCurrentThread("holder");
    RT.enterCritical();
    InCritical.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    RT.exitCritical();
    RT.detachCurrentThread();
  });
  while (!InCritical.load())
    std::this_thread::yield();

  RT.attachCurrentThread("gc", ThreadKind::GcSupport);
  RT.beginPause(); // blocks until Holder drains: ttsp ~= the hold time
  RT.endPause();
  RT.detachCurrentThread();
  Holder.join();

  support::MetricsSnapshot After = support::Metrics::snapshot();
  const support::HistogramSample *Ttsp =
      After.histogram("rt/gc/ttsp_nanos");
  ASSERT_NE(Ttsp, nullptr);
  EXPECT_EQ(Ttsp->Count, CountBefore + 1);
  EXPECT_GE(Ttsp->Sum - SumBefore, 5'000'000u)
      << "a ~10ms critical holdout must show up as >=5ms of ttsp";
}

// Regression: the OOM-retry path in the object factory used to root the
// null result of a failed post-collect allocation. With every byte of the
// heap rooted, the retry's collect() reclaims nothing and the factory must
// return null — not crash, not root a tombstone.
TEST(RtSafepoint, OomRetryReturnsNullInsteadOfRootingIt) {
  RuntimeConfig C;
  C.Heap.CapacityBytes = 1 << 20;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    unsigned Allocated = 0;
    for (;;) {
      ObjectHeader *Obj = RT.newPrimArray(Scope, PrimType::Int, 1024);
      if (!Obj)
        break; // OutOfMemoryError: heap exhausted, everything rooted
      ++Allocated;
      ASSERT_LT(Allocated, 4096u) << "a 1MiB heap cannot hold this many";
    }
    EXPECT_GT(Allocated, 0u);
    // The failed attempt must not have rooted a null.
    for (ObjectHeader *Root : Scope.roots())
      EXPECT_NE(Root, nullptr);
    EXPECT_EQ(Scope.roots().size(), Allocated);

    // Same contract for ref arrays.
    EXPECT_EQ(RT.newRefArray(Scope, 4096), nullptr);
    EXPECT_EQ(Scope.roots().size(), Allocated);
  }
  RT.detachCurrentThread();
}

} // namespace

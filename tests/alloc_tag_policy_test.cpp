//===- alloc_tag_policy_test.cpp - Tag-on-allocation ablation -------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pins the exact detection envelope of the tag-on-allocation design
// alternative against MTE4JNI's:
//
//                         MTE4JNI      tag-on-alloc
//   OOB while JNI-held    caught       caught
//   OOB with NO JNI hold  missed(*)    caught       <- its one advantage
//   use-after-release     caught       MISSED       <- its cost
//   Get/Release overhead  O(n/16)+lock one LDG
//
//   (*) under MTE4JNI untagged objects are tag 0 = untagged pointers.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;

api::SessionConfig tagOnAllocConfig() {
  api::SessionConfig C;
  C.Protection = api::Scheme::TagOnAllocSync;
  C.HeapBytes = 8 << 20;
  return C;
}

TEST(AllocTagPolicy, ObjectsAreTaggedAtAllocation) {
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 32);
  // Tagged before any JNI Get happened.
  EXPECT_NE(mte::ldgTag(A->dataAddress()), 0);
}

TEST(AllocTagPolicy, GetReturnsTheAllocationTag) {
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 32);
  mte::TagValue AllocTag = mte::ldgTag(A->dataAddress());

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "use", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    EXPECT_EQ(P.tag(), AllocTag);
    EXPECT_FALSE(IsCopy);
    mte::store<jni::jint>(P + 31, 7); // in-bounds: fine
    Main.env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });
  EXPECT_EQ(S.faults().totalCount(), 0u);
  EXPECT_EQ(rt::arrayData<jni::jint>(A)[31], 7);
}

TEST(AllocTagPolicy, OobWhileHeldIsCaught) {
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 18);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    mte::store<jni::jint>(P + 21, 1);
    Main.env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });
  EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u);
}

TEST(AllocTagPolicy, UseAfterReleaseIsMissed) {
  // The trade-off: without Algorithm 2's tag clearing, a stale pointer
  // still matches and the bug sails through.
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 32);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "stale", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    Main.env().ReleaseIntArrayElements(A, P, 0);
    mte::store<jni::jint>(P, 0xBAD); // MTE4JNI catches this; we don't.
    return 0;
  });
  EXPECT_EQ(S.faults().totalCount(), 0u)
      << "documented blind spot of tag-on-alloc";
}

TEST(AllocTagPolicy, CrossObjectAccessCaughtEvenWithoutJniHold) {
  // Its one advantage: B was never passed through JNI, yet an overflow
  // from A into B is caught because B is tagged anyway. (MTE4JNI catches
  // this case too when B's granules are tag 0 — the difference shows
  // when A is untagged, which cannot happen while A is JNI-held.)
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 4);
  jni::jarray B = Main.env().NewIntArray(Scope, 4);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "cross", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    ptrdiff_t Delta = static_cast<ptrdiff_t>(
        (B->dataAddress() - A->dataAddress()) / sizeof(jni::jint));
    volatile jni::jint V = mte::load<jni::jint>(P + Delta);
    (void)V;
    Main.env().ReleaseIntArrayElements(A, P, jni::JNI_ABORT);
    return 0;
  });
  // A and B carry independent random tags: collision chance 1/15.
  // With seed 1 they differ; assert on the ground truth to be robust.
  if (mte::ldgTag(A->dataAddress()) != mte::ldgTag(B->dataAddress())) {
    EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u);
  }
}

TEST(AllocTagPolicy, FreedObjectTagsAreCleared) {
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  uint64_t DataAddr;
  {
    rt::HandleScope Scope(S.runtime());
    jni::jarray A = Main.env().NewIntArray(Scope, 32);
    DataAddr = A->dataAddress();
    EXPECT_NE(mte::ldgTag(DataAddr), 0);
  }
  S.runtime().gc().collect();
  EXPECT_EQ(mte::ldgTag(DataAddr), 0)
      << "sweep must clear the dead object's colours";
}

TEST(AllocTagPolicy, NoRefCountMachineryInvolved) {
  // The whole point: repeated Get/Release pairs touch no table and
  // generate no tags.
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 128);

  uint64_t IrgBefore = mte::MteSystem::instance().stats().IrgCount.load();
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "loop", [&] {
    for (int I = 0; I < 100; ++I) {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(A, &IsCopy);
      Main.env().ReleaseIntArrayElements(A, P, jni::JNI_ABORT);
    }
    return 0;
  });
  EXPECT_EQ(mte::MteSystem::instance().stats().IrgCount.load(), IrgBefore)
      << "100 Get/Release pairs must not generate a single tag";
}

TEST(AllocTagPolicy, UtfScratchStillProtected) {
  api::Session S(tagOnAllocConfig());
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jstring Str = Main.env().NewStringUTF(Scope, "scratch");
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "utf", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetStringUTFChars(Str, &IsCopy);
    volatile char C = mte::load(P + 200); // far past the copy
    (void)C;
    Main.env().ReleaseStringUTFChars(Str, P);
    return 0;
  });
  EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u);
}

} // namespace

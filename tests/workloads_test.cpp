//===- workloads_test.cpp - Workload suite correctness -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The protection schemes must be transparent: each of the 16 Geekbench-
// style workloads must produce the *same* checksum under every scheme,
// with no faults, and be deterministic given a seed. Parameterised over
// the full suite (TEST_P).
//
//===----------------------------------------------------------------------===//

#include "mte4jni/workloads/Workload.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using api::Scheme;
using workloads::Workload;
using workloads::WorkloadContext;

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> Names;
  for (auto &W : workloads::makeAllWorkloads())
    Names.push_back(W->name());
  return Names;
}

uint64_t runWorkloadOnce(const std::string &Name, Scheme Sch,
                         uint64_t Seed) {
  api::SessionConfig C;
  C.Protection = Sch;
  C.HeapBytes = 32ull << 20;
  C.Seed = Seed;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  auto W = workloads::makeWorkload(Name.c_str());
  EXPECT_NE(W, nullptr);
  WorkloadContext Ctx{S, Main.env(), Main.thread(), Scope, Seed};
  W->prepare(Ctx);
  uint64_t Checksum = W->run(Ctx);
  mte::simulatedSyscall("getuid"); // flush async latches

  EXPECT_EQ(S.faults().totalCount(), 0u)
      << Name << " faulted under " << api::schemeName(Sch);
  return Checksum;
}

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, ChecksumIdenticalAcrossSchemes) {
  const std::string &Name = GetParam();
  uint64_t Baseline = runWorkloadOnce(Name, Scheme::NoProtection, 7);
  EXPECT_EQ(runWorkloadOnce(Name, Scheme::GuardedCopy, 7), Baseline);
  EXPECT_EQ(runWorkloadOnce(Name, Scheme::Mte4JniSync, 7), Baseline);
  EXPECT_EQ(runWorkloadOnce(Name, Scheme::Mte4JniAsync, 7), Baseline);
}

TEST_P(WorkloadSuite, DeterministicGivenSeed) {
  const std::string &Name = GetParam();
  EXPECT_EQ(runWorkloadOnce(Name, Scheme::NoProtection, 11),
            runWorkloadOnce(Name, Scheme::NoProtection, 11));
}

TEST_P(WorkloadSuite, RepeatedRunsAreStable) {
  // run() must be re-runnable on the same prepared state (the benchmark
  // harness runs many iterations).
  const std::string &Name = GetParam();
  api::SessionConfig C;
  C.Protection = Scheme::Mte4JniSync;
  C.HeapBytes = 32ull << 20;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  auto W = workloads::makeWorkload(Name.c_str());
  WorkloadContext Ctx{S, Main.env(), Main.thread(), Scope, 3};
  W->prepare(Ctx);
  uint64_t First = W->run(Ctx);
  uint64_t Second = W->run(Ctx);
  uint64_t Third = W->run(Ctx);
  // Workloads that mutate their image in place may legitimately produce a
  // new checksum per pass, but they must not fault or diverge between
  // identical run sequences.
  (void)First;
  EXPECT_EQ(S.faults().totalCount(), 0u);
  (void)Second;
  (void)Third;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSuite,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(WorkloadRegistry, HasSixteenUniqueNames) {
  auto Names = allWorkloadNames();
  EXPECT_EQ(Names.size(), 16u);
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(std::unique(Names.begin(), Names.end()), Names.end());
}

TEST(WorkloadRegistry, JniIntensiveSetMatchesPaper) {
  // §5.4 names Clang, Text Processing and PDF Render(er) as the workloads
  // where MTE+Sync loses to guarded copy.
  for (auto &W : workloads::makeAllWorkloads()) {
    std::string Name = W->name();
    bool Expected = Name == "Clang" || Name == "Text Processing" ||
                    Name == "PDF Renderer";
    EXPECT_EQ(W->isJniIntensive(), Expected) << Name;
  }
}

TEST(WorkloadRegistry, UnknownNameYieldsNull) {
  EXPECT_EQ(workloads::makeWorkload("No Such Workload"), nullptr);
}

} // namespace

//===- fault_abort_test.cpp - FaultAction::Abort death test --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The fault handler can ask for real-device behaviour: print the report
// and abort the process. Verified with a gtest death test.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/MteSystem.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;

void triggerFatalOverflow() {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  mte::MteSystem::instance().setFaultHandler(
      [](void *, const mte::FaultRecord &) {
        return mte::FaultAction::Abort; // emulate the device
      },
      nullptr);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env()
                 .GetPrimitiveArrayCritical(Array, &IsCopy)
                 .cast<jni::jint>();
    mte::store<jni::jint>(P + 21, 1); // aborts here
    Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(), 0);
    return 0;
  });
}

TEST(FaultAbortDeathTest, AbortActionKillsTheProcess) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(triggerFatalOverflow(), "SEGV_MTESERR");
}

TEST(FaultAbortDeathTest, ContinueActionDoesNot) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env()
                 .GetPrimitiveArrayCritical(Array, &IsCopy)
                 .cast<jni::jint>();
    mte::store<jni::jint>(P + 21, 1);
    Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(), 0);
    return 0;
  });
  EXPECT_EQ(S.faults().totalCount(), 1u); // recorded, still alive
}

} // namespace

//===- mte_access_test.cpp - Checked load/store behaviour ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the simulated MTE data path: tag checks fire exactly when
// (a) the thread's TCF mode is sync/async, (b) TCO is clear, (c) the address
// is inside a PROT_MTE region, and (d) pointer tag != granule tag.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using mte::CheckMode;
using mte::MteSystem;
using mte::TaggedPtr;
using mte::ThreadState;

class MteAccessTest : public ::testing::Test {
protected:
  void SetUp() override {
    MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(1 << 20);
  }
  void TearDown() override {
    Arena.reset();
    MteSystem::instance().reset();
  }

  /// An int buffer inside the PROT_MTE arena.
  int32_t *allocInts(size_t N) {
    return static_cast<int32_t *>(Arena->allocate(N * sizeof(int32_t)));
  }

  std::unique_ptr<mte::TaggedArena> Arena;
};

TEST_F(MteAccessTest, NoChecksWhenModeNone) {
  int32_t *Buf = allocInts(4);
  // Tag the memory but keep mode None: accesses with a mismatching pointer
  // tag must not fault.
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 5);
  mte::setTagRange(P.cast<void>(), 4 * sizeof(int32_t));
  auto Wrong = P.withTag(9);
  mte::store<int32_t>(Wrong, 42);
  EXPECT_EQ(mte::load<int32_t>(Wrong), 42);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);
}

TEST_F(MteAccessTest, SyncFaultOnTagMismatch) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  int32_t *Buf = allocInts(4);
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 5);
  mte::setTagRange(P.cast<void>(), 4 * sizeof(int32_t));

  // Matching tag: no fault.
  mte::store<int32_t>(P, 7);
  EXPECT_EQ(mte::load<int32_t>(P), 7);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  // Mismatching tag: a sync fault with a precise address.
  auto Wrong = P.withTag(6);
  mte::store<int32_t>(Wrong, 8);
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].Kind, mte::FaultKind::TagMismatchSync);
  EXPECT_TRUE(Faults[0].HasAddress);
  EXPECT_EQ(Faults[0].Address, reinterpret_cast<uint64_t>(Buf));
  EXPECT_EQ(Faults[0].PointerTag, 6);
  EXPECT_EQ(Faults[0].MemoryTag, 5);
  EXPECT_TRUE(Faults[0].IsWrite);
}

TEST_F(MteAccessTest, TcoSuppressesChecks) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  int32_t *Buf = allocInts(4);
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 3);
  mte::setTagRange(P.cast<void>(), 4 * sizeof(int32_t));
  auto Wrong = P.withTag(12);

  {
    mte::ScopedTco Suppress(true);
    mte::store<int32_t>(Wrong, 1); // suppressed: no fault
  }
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  mte::store<int32_t>(Wrong, 2); // TCO restored: faults
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 1u);
}

TEST_F(MteAccessTest, AddressesOutsideRegionsAreUnchecked) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  int32_t Stack[4] = {0, 0, 0, 0};
  auto P = TaggedPtr<int32_t>::fromRaw(Stack, 9); // bogus tag
  mte::store<int32_t>(P, 5);
  EXPECT_EQ(Stack[0], 5);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);
}

TEST_F(MteAccessTest, OutOfBoundsInheritedTagFaults) {
  // The paper's core scenario: pointer arithmetic inherits the tag, the
  // out-of-bounds granule has a different (zero) tag.
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  int32_t *Buf = allocInts(18); // like Figure 3's 18-int array
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 4);
  mte::setTagRange(P.cast<void>(), 18 * sizeof(int32_t));

  mte::store<int32_t>(P + 17, 1); // last element: fine
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  mte::store<int32_t>(P + 21, 1); // Figure 3's faulting index
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].Address, reinterpret_cast<uint64_t>(Buf + 21));
  EXPECT_EQ(Faults[0].PointerTag, 4);
}

TEST_F(MteAccessTest, StraddlingAccessChecksBothGranules) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  // 32 bytes = 2 granules; tag only the first one.
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(32));
  auto G0 = TaggedPtr<uint8_t>::fromRaw(Buf, 7);
  mte::setTagRange(G0.cast<void>(), 16);

  // An 8-byte access at offset 12 touches granule 0 (tag 7) and granule 1
  // (tag 0): must fault even though it starts in tagged memory.
  auto P64 = TaggedPtr<uint64_t>::fromRaw(
      reinterpret_cast<uint64_t *>(Buf + 12), 7);
  mte::store<uint64_t>(P64, 1);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 1u);
}

TEST_F(MteAccessTest, AsyncFaultDeferredToSyscall) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Async);
  ThreadState::current().setTco(false);

  int32_t *Buf = allocInts(8);
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 2);
  mte::setTagRange(P.cast<void>(), 8 * sizeof(int32_t));

  mte::store<int32_t>(P.withTag(11), 1);
  // Latched, not yet delivered.
  EXPECT_TRUE(ThreadState::current().asyncPending());
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  mte::simulatedSyscall("getuid");
  EXPECT_FALSE(ThreadState::current().asyncPending());
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].Kind, mte::FaultKind::TagMismatchAsync);
  // SEGV_MTEAERR carries no address; the simulator keeps ground truth in
  // DebugAddress only.
  EXPECT_FALSE(Faults[0].HasAddress);
  EXPECT_EQ(Faults[0].Address, 0u);
  EXPECT_EQ(Faults[0].DebugAddress, reinterpret_cast<uint64_t>(Buf));
  EXPECT_EQ(Faults[0].DeliveredAtSyscall, "getuid");
}

TEST_F(MteAccessTest, AsyncTfsrIsSticky) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Async);
  ThreadState::current().setTco(false);

  int32_t *Buf = allocInts(8);
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 2);
  mte::setTagRange(P.cast<void>(), 8 * sizeof(int32_t));

  // Three mismatching accesses, one delivery (first one kept).
  mte::store<int32_t>(P.withTag(3), 1);
  mte::store<int32_t>((P + 1).withTag(4), 1);
  mte::store<int32_t>((P + 2).withTag(5), 1);
  mte::simulatedSyscall("write");

  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].PointerTag, 3);
  EXPECT_EQ(
      MteSystem::instance().stats().AsyncFaultsLatched.load(), 3u);
  EXPECT_EQ(
      MteSystem::instance().stats().AsyncFaultsDelivered.load(), 1u);
}

TEST_F(MteAccessTest, BulkHelpersCheckPerGranule) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(64));
  auto P = TaggedPtr<uint8_t>::fromRaw(Buf, 5);
  mte::setTagRange(P.cast<void>(), 64);

  uint64_t ChecksBefore = ThreadState::current().checksPerformed();
  mte::fillBytes(P.cast<void>(), 0xAB, 64);
  uint64_t Checks = ThreadState::current().checksPerformed() - ChecksBefore;
  EXPECT_EQ(Checks, 4u); // 64 bytes = 4 granules
  EXPECT_EQ(Buf[63], 0xAB);

  // Copy with a mismatching destination tag faults.
  uint8_t Host[64] = {};
  mte::readBytes(Host, P.cast<const void>(), 64);
  EXPECT_EQ(Host[0], 0xAB);
  mte::writeBytes(P.withTag(1).cast<void>(), Host, 64);
  EXPECT_GT(MteSystem::instance().faultLog().totalCount(), 0u);
}

TEST_F(MteAccessTest, CheckedSpanRoundTrip) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  int32_t *Buf = allocInts(16);
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 8);
  mte::setTagRange(P.cast<void>(), 16 * sizeof(int32_t));

  mte::CheckedSpan<int32_t> Span(P, 16);
  for (uint64_t I = 0; I < Span.size(); ++I)
    Span.set(I, static_cast<int32_t>(I * I));
  for (uint64_t I = 0; I < Span.size(); ++I)
    EXPECT_EQ(Span.get(I), static_cast<int32_t>(I * I));
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);
}

TEST_F(MteAccessTest, IrgRespectsExcludeMask) {
  // Default GCR excludes tag 0.
  for (int I = 0; I < 200; ++I)
    EXPECT_NE(mte::irgTag(), 0);

  // Exclude everything except tag 9.
  uint16_t Exclude = static_cast<uint16_t>(~(1u << 9));
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(mte::irgTag(Exclude), 9);

  // All excluded -> hardware yields 0.
  EXPECT_EQ(mte::irgTag(0xFFFF), 0);
}

TEST_F(MteAccessTest, LdgReadsBackStoredTags) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(48));
  auto P = TaggedPtr<uint8_t>::fromRaw(Buf, 13);
  mte::setTagRange(P.cast<void>(), 48);
  for (int G = 0; G < 3; ++G)
    EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Buf) + G * 16), 13);
  mte::clearTagRange(reinterpret_cast<uint64_t>(Buf), 48);
  for (int G = 0; G < 3; ++G)
    EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Buf) + G * 16), 0);
}

TEST_F(MteAccessTest, FaultHandlerReceivesRecord) {
  MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
  ThreadState::current().setTco(false);

  static int HandlerCalls;
  HandlerCalls = 0;
  MteSystem::instance().setFaultHandler(
      [](void *, const mte::FaultRecord &R) {
        ++HandlerCalls;
        EXPECT_EQ(R.Kind, mte::FaultKind::TagMismatchSync);
        return mte::FaultAction::Continue;
      },
      nullptr);

  int32_t *Buf = allocInts(4);
  auto P = TaggedPtr<int32_t>::fromRaw(Buf, 5);
  mte::setTagRange(P.cast<void>(), 16);
  mte::store<int32_t>(P.withTag(1), 1);
  EXPECT_EQ(HandlerCalls, 1);
  MteSystem::instance().setFaultHandler(nullptr, nullptr);
}

} // namespace

//===- rt_refarray_test.cpp - Object[] and the tracing GC -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reference arrays make the collector a real tracing GC: objects reachable
// only through Object[] slots survive, cycles are handled, and after a
// compacting collection the slots themselves are rewritten. JNI accesses
// them through bounds-checked Get/SetObjectArrayElement (no raw pointers —
// which is why the paper's Table 1 does not list them).
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

TEST(RefArray, TransitiveReachabilitySurvivesGc) {
  RuntimeConfig C;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    // Root -> Holder[0] -> Inner; Inner itself is NOT rooted.
    ObjectHeader *Holder = RT.newRefArray(Scope, 4);
    ObjectHeader *Inner = RT.heap().allocPrimArray(PrimType::Int, 16);
    refArraySlots(Holder)[0] = Inner;

    RT.gc().collect();
    EXPECT_TRUE(RT.heap().isLiveObject(Inner))
        << "reachable through the ref array";

    // Cut the edge: now it is garbage.
    refArraySlots(Holder)[0] = nullptr;
    RT.gc().collect();
    EXPECT_FALSE(RT.heap().isLiveObject(Inner));
  }
  RT.detachCurrentThread();
}

TEST(RefArray, DeepChainsAndCycles) {
  RuntimeConfig C;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    // A rooted chain of 50 ref arrays, with a back edge making a cycle.
    ObjectHeader *Head = RT.newRefArray(Scope, 1);
    ObjectHeader *Cur = Head;
    std::vector<ObjectHeader *> Chain{Head};
    for (int I = 0; I < 49; ++I) {
      ObjectHeader *Next = RT.heap().allocRefArray(1);
      refArraySlots(Cur)[0] = Next;
      Chain.push_back(Next);
      Cur = Next;
    }
    refArraySlots(Cur)[0] = Head; // cycle

    RT.gc().collect(); // must terminate and keep the whole chain
    for (ObjectHeader *Link : Chain)
      EXPECT_TRUE(RT.heap().isLiveObject(Link));

    // Unroot the head: the entire cycle is garbage despite the back edge.
    Scope.unroot(Head);
    RT.gc().collect();
    for (ObjectHeader *Link : Chain)
      EXPECT_FALSE(RT.heap().isLiveObject(Link));
  }
  RT.detachCurrentThread();
}

TEST(RefArray, CompactionRewritesSlots) {
  RuntimeConfig C;
  C.Gc.Mode = GcMode::Compacting;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    ObjectHeader *Garbage = RT.heap().allocPrimArray(PrimType::Int, 128);
    (void)Garbage;
    ObjectHeader *Holder = RT.newRefArray(Scope, 2);
    ObjectHeader *Payload = RT.heap().allocPrimArray(PrimType::Int, 32);
    rt::arrayData<int32_t>(Payload)[3] = 777;
    refArraySlots(Holder)[1] = Payload;
    uint64_t OldPayload = reinterpret_cast<uint64_t>(Payload);

    GcResult Result = RT.gc().collect();
    EXPECT_GT(Result.ObjectsMoved, 0u);

    ObjectHeader *NewHolder = Scope.roots()[0];
    ObjectHeader *NewPayload = refArraySlots(NewHolder)[1];
    ASSERT_NE(NewPayload, nullptr);
    EXPECT_NE(reinterpret_cast<uint64_t>(NewPayload), OldPayload)
        << "payload should have moved";
    EXPECT_TRUE(RT.heap().isLiveObject(NewPayload));
    EXPECT_EQ(rt::arrayData<int32_t>(NewPayload)[3], 777);
    EXPECT_EQ(refArraySlots(NewHolder)[0], nullptr);
  }
  RT.detachCurrentThread();
}

TEST(RefArray, JniElementAccessIsBoundsChecked) {
  api::SessionConfig C;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jarray Arr = Main.env().NewObjectArray(Scope, 3);
  ASSERT_NE(Arr, nullptr);
  jni::jstring Str = Main.env().NewStringUTF(Scope, "element");

  Main.env().SetObjectArrayElement(Arr, 1, Str);
  EXPECT_EQ(Main.env().GetObjectArrayElement(Arr, 1), Str);
  EXPECT_EQ(Main.env().GetObjectArrayElement(Arr, 0), nullptr);
  EXPECT_FALSE(Main.env().ExceptionCheck());

  // Out-of-bounds indices raise ArrayIndexOutOfBoundsException — the JNI
  // layer itself checks, no MTE involvement needed.
  Main.env().SetObjectArrayElement(Arr, 3, Str);
  EXPECT_TRUE(Main.env().ExceptionCheck());
  Main.env().ExceptionClear();
  EXPECT_EQ(Main.env().GetObjectArrayElement(Arr, -1), nullptr);
  EXPECT_TRUE(Main.env().ExceptionCheck());
  Main.env().ExceptionClear();

  // Type confusion rejected.
  Main.env().SetObjectArrayElement(Str, 0, Arr);
  EXPECT_TRUE(Main.env().ExceptionCheck());
  Main.env().ExceptionClear();
}

TEST(RefArray, ReferencedPrimArrayUsableViaJniUnderMte) {
  // An int[] reachable only via an Object[] is still JNI-taggable.
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jarray Holder = Main.env().NewObjectArray(Scope, 1);
  {
    rt::HandleScope Temp(S.runtime());
    jni::jarray Ints = Main.env().NewIntArray(Temp, 64);
    Main.env().SetObjectArrayElement(Holder, 0, Ints);
  } // Temp scope dies; Ints survives via Holder
  S.runtime().gc().collect();

  jni::jarray Ints = Main.env().GetObjectArrayElement(Holder, 0);
  ASSERT_NE(Ints, nullptr);
  ASSERT_TRUE(S.runtime().heap().isLiveObject(Ints));

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "use", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(Ints, &IsCopy);
    mte::store<jni::jint>(P + 63, 9);
    Main.env().ReleaseIntArrayElements(Ints, P, 0);
    return 0;
  });
  EXPECT_EQ(S.faults().totalCount(), 0u);
  EXPECT_EQ(rt::arrayData<jni::jint>(Ints)[63], 9);
}

} // namespace

//===- rt_thread_trampoline_test.cpp - Threads, transitions, trampolines -------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// §3.3/§4.3 behaviour: thread attach/detach, state transitions, and the
// TCO toggling rules for the three native-method kinds.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/rt/Trampoline.h"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

RuntimeConfig mteConfig() {
  RuntimeConfig C;
  C.Heap.CapacityBytes = 4 << 20;
  C.Heap.ProtMte = true;
  C.Heap.Alignment = 16;
  C.CheckMode = mte::CheckMode::Sync;
  C.TagChecksInNative = true;
  return C;
}

TEST(RtThread, AttachDetachLifecycle) {
  RuntimeConfig C;
  Runtime RT(C);
  EXPECT_EQ(JavaThread::currentOrNull(), nullptr);
  JavaThread &T = RT.attachCurrentThread("main");
  EXPECT_EQ(JavaThread::currentOrNull(), &T);
  EXPECT_EQ(T.name(), "main");
  EXPECT_EQ(T.state(), JavaThreadState::Runnable);
  RT.detachCurrentThread();
  EXPECT_EQ(JavaThread::currentOrNull(), nullptr);
}

TEST(RtThread, MteSchemeAttachesWithTcoSet) {
  Runtime RT(mteConfig());
  RT.attachCurrentThread("main");
  // Managed code must run with checks suppressed (TCO=1).
  EXPECT_TRUE(mte::ThreadState::current().tco());
  EXPECT_FALSE(mte::ThreadState::current().checksOn());
  RT.detachCurrentThread();
  EXPECT_FALSE(mte::ThreadState::current().tco());
}

TEST(RtThread, NoProtectionSchemeLeavesTcoAlone) {
  RuntimeConfig C;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  EXPECT_FALSE(mte::ThreadState::current().tco());
  RT.detachCurrentThread();
}

TEST(RtThread, RegularNativeTogglesTcoViaTransition) {
  Runtime RT(mteConfig());
  JavaThread &T = RT.attachCurrentThread("main");

  EXPECT_TRUE(mte::ThreadState::current().tco());
  bool CheckedInside = false;
  callNative(T, NativeKind::Regular, "native_method", [&] {
    EXPECT_EQ(T.state(), JavaThreadState::InNative);
    CheckedInside = !mte::ThreadState::current().tco() &&
                    mte::ThreadState::current().checksOn();
    return 0;
  });
  EXPECT_TRUE(CheckedInside) << "checks must be live inside native code";
  EXPECT_TRUE(mte::ThreadState::current().tco()) << "restored after return";
  EXPECT_EQ(T.state(), JavaThreadState::Runnable);
  RT.detachCurrentThread();
}

TEST(RtThread, FastNativeTogglesTcoWithoutTransition) {
  Runtime RT(mteConfig());
  JavaThread &T = RT.attachCurrentThread("main");
  callNative(T, NativeKind::FastNative, "fast_method", [&] {
    // @FastNative skips the state transition...
    EXPECT_EQ(T.state(), JavaThreadState::Runnable);
    // ...but the trampoline itself must still enable checks (§4.3).
    EXPECT_FALSE(mte::ThreadState::current().tco());
    return 0;
  });
  EXPECT_TRUE(mte::ThreadState::current().tco());
  RT.detachCurrentThread();
}

TEST(RtThread, CriticalNativeNeverTouchesTco) {
  Runtime RT(mteConfig());
  JavaThread &T = RT.attachCurrentThread("main");
  callNative(T, NativeKind::CriticalNative, "critical_method", [&] {
    EXPECT_EQ(T.state(), JavaThreadState::Runnable);
    // @CriticalNative cannot touch the heap; TCO stays as-is.
    EXPECT_TRUE(mte::ThreadState::current().tco());
    return 0;
  });
  RT.detachCurrentThread();
}

TEST(RtThread, NestedNativeCallsViaFastNative) {
  Runtime RT(mteConfig());
  JavaThread &T = RT.attachCurrentThread("main");
  callNative(T, NativeKind::Regular, "outer", [&] {
    EXPECT_FALSE(mte::ThreadState::current().tco());
    // A @FastNative call from native context must restore the outer TCO.
    callNative(T, NativeKind::FastNative, "inner", [&] {
      EXPECT_FALSE(mte::ThreadState::current().tco());
      return 0;
    });
    EXPECT_FALSE(mte::ThreadState::current().tco());
    return 0;
  });
  EXPECT_TRUE(mte::ThreadState::current().tco());
  RT.detachCurrentThread();
}

TEST(RtThread, TrampolinePushesFrames) {
  Runtime RT(mteConfig());
  JavaThread &T = RT.attachCurrentThread("main");
  callNative(T, NativeKind::Regular, "my_native", [&] {
    auto Frames = support::FrameStack::current().capture();
    EXPECT_GE(Frames.size(), 2u);
    if (Frames.size() >= 2) {
      EXPECT_STREQ(Frames[0].Function, "my_native");
      EXPECT_STREQ(Frames[1].Function, "art_quick_generic_jni_trampoline");
    }
    return 0;
  });
  EXPECT_TRUE(support::FrameStack::current().empty());
  RT.detachCurrentThread();
}

TEST(RtThread, ReturnValuesPassThrough) {
  RuntimeConfig C;
  Runtime RT(C);
  JavaThread &T = RT.attachCurrentThread("main");
  int R = callNative(T, NativeKind::Regular, "f", [] { return 42; });
  EXPECT_EQ(R, 42);
  double D =
      callNative(T, NativeKind::FastNative, "g", [] { return 1.5; });
  EXPECT_EQ(D, 1.5);
  RT.detachCurrentThread();
}

TEST(RtThread, MultipleThreadsAttachConcurrently) {
  Runtime RT(mteConfig());
  RT.attachCurrentThread("main");
  std::vector<std::thread> Threads;
  std::atomic<int> Ok{0};
  for (int I = 0; I < 8; ++I) {
    Threads.emplace_back([&RT, &Ok, I] {
      JavaThread &Me = RT.attachCurrentThread("t" + std::to_string(I));
      callNative(Me, NativeKind::Regular, "work", [&] {
        if (!mte::ThreadState::current().tco())
          ++Ok;
        return 0;
      });
      RT.detachCurrentThread();
    });
  }
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Ok.load(), 8);
  RT.detachCurrentThread();
}

TEST(RtThread, NativeKindNames) {
  EXPECT_STREQ(nativeKindName(NativeKind::Regular), "regular");
  EXPECT_STREQ(nativeKindName(NativeKind::FastNative), "@FastNative");
  EXPECT_STREQ(nativeKindName(NativeKind::CriticalNative),
               "@CriticalNative");
}

} // namespace

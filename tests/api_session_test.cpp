//===- api_session_test.cpp - The Session façade --------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/Metrics.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using api::Scheme;

TEST(Session, SchemeNames) {
  EXPECT_STREQ(api::schemeName(Scheme::NoProtection), "no-protection");
  EXPECT_STREQ(api::schemeName(Scheme::GuardedCopy), "guarded-copy");
  EXPECT_STREQ(api::schemeName(Scheme::Mte4JniSync), "mte4jni+sync");
  EXPECT_STREQ(api::schemeName(Scheme::Mte4JniAsync), "mte4jni+async");
}

TEST(Session, WiresCheckModePerScheme) {
  {
    api::Session S({.Protection = Scheme::NoProtection});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::None);
    EXPECT_EQ(S.mtePolicy(), nullptr);
    EXPECT_EQ(S.guardedPolicy(), nullptr);
  }
  {
    api::Session S({.Protection = Scheme::GuardedCopy});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::None);
    EXPECT_NE(S.guardedPolicy(), nullptr);
  }
  {
    api::Session S({.Protection = Scheme::Mte4JniSync});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::Sync);
    EXPECT_NE(S.mtePolicy(), nullptr);
    EXPECT_TRUE(S.runtime().config().TagChecksInNative);
  }
  {
    api::Session S({.Protection = Scheme::Mte4JniAsync});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::Async);
  }
}

TEST(Session, SequentialSessionsAreIndependent) {
  for (int Round = 0; Round < 3; ++Round) {
    api::Session S({.Protection = Scheme::Mte4JniSync});
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    jni::jarray A = Main.env().NewIntArray(Scope, 18);
    rt::callNative(Main.thread(), rt::NativeKind::Regular, "bug", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(A, &IsCopy);
      mte::store<jni::jint>(P + 21, 1);
      Main.env().ReleaseIntArrayElements(A, P, 0);
      return 0;
    });
    // Each session starts with a clean fault log.
    EXPECT_EQ(S.faults().totalCount(), 1u) << "round " << Round;
  }
}

TEST(Session, ConfigurationIsPlumbedThrough) {
  api::SessionConfig C;
  C.Protection = Scheme::Mte4JniSync;
  C.Locks = core::LockScheme::GlobalLock;
  C.NumHashTables = 8;
  C.ExcludeAdjacentTags = true;
  C.HeapBytes = 16ull << 20;
  api::Session S(C);
  ASSERT_NE(S.mtePolicy(), nullptr);
  EXPECT_EQ(S.mtePolicy()->allocator().lockScheme(),
            core::LockScheme::GlobalLock);
  EXPECT_EQ(S.mtePolicy()->allocator().table().numTables(), 8u);
  EXPECT_GE(S.runtime().heap().capacity(), 16ull << 20);
}

TEST(Session, StatsReportMentionsTheInterestingNumbers) {
  api::Session S({.Protection = Scheme::Mte4JniSync});
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 64);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "work", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    Main.env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });

  std::string Report = S.statsReport();
  EXPECT_NE(Report.find("mte4jni+sync"), std::string::npos);
  EXPECT_NE(Report.find("heap:"), std::string::npos);
  EXPECT_NE(Report.find("mte4jni: 1 acquires (1 generated / 0 shared)"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("1 releases"), std::string::npos);
  EXPECT_NE(Report.find("faults recorded: 0"), std::string::npos);
}

TEST(Session, GuardedStatsReport) {
  api::Session S({.Protection = Scheme::GuardedCopy});
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 64);
  jni::jboolean IsCopy;
  auto P = Main.env().GetIntArrayElements(A, &IsCopy);
  Main.env().ReleaseIntArrayElements(A, P, 0);

  std::string Report = S.statsReport();
  EXPECT_NE(Report.find("guarded-copy: 1 acquires, 1 releases"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("0 corruptions"), std::string::npos);
}

TEST(Session, MetricsSnapshotCoversTheInstrumentedStack) {
  support::Metrics::resetAll();
  api::SessionConfig C;
  C.Protection = Scheme::Mte4JniSync;
  api::Session S(C);
  {
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    jni::jarray A = Main.env().NewIntArray(Scope, 256);
    rt::callNative(Main.thread(), rt::NativeKind::Regular, "work", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(A, &IsCopy);
      for (int I = 0; I < 256; ++I)
        mte::store<jni::jint>(P + I, I);
      Main.env().ReleaseIntArrayElements(A, P, 0);
      return 0;
    });
    S.runtime().gc().collect();
  }

  support::MetricsSnapshot Snap = S.metricsSnapshot();
  // The four subsystems the acceptance criteria name: tag checks,
  // TagTable fast path, JNI pins, GC phases.
  EXPECT_GT(Snap.counterValue("mte/access/checked_stores"), 0u);
  EXPECT_GT(Snap.counterValue("mte/access/checked_granules"), 0u);
  EXPECT_GT(Snap.counterValue("core/tagallocator/acquires"), 0u);
  EXPECT_GT(Snap.counterValue("core/tagallocator/tags_generated"), 0u);
  EXPECT_GT(Snap.counterValue("jni/get_calls"), 0u);
  EXPECT_GT(Snap.counterValue("jni/release_calls"), 0u);
  EXPECT_GE(Snap.gaugeValue("jni/pin_depth_hwm"), 1);
  EXPECT_GT(Snap.counterValue("rt/gc/cycles"), 0u);
  EXPECT_GT(Snap.counterValue("mte/instr/irg"), 0u);
  EXPECT_GT(Snap.counterValue("mte/instr/stg_granules"), 0u);
  const support::HistogramSample *Collect =
      Snap.histogram("rt/gc/collect_nanos");
  ASSERT_NE(Collect, nullptr);
  EXPECT_GT(Collect->Count, 0u);
  const support::HistogramSample *Mark = Snap.histogram("rt/gc/mark_nanos");
  ASSERT_NE(Mark, nullptr);
  EXPECT_GT(Mark->Count, 0u);
  // No faults in a clean run.
  EXPECT_EQ(Snap.counterValue("mte/access/mismatch_sync"), 0u);
}

TEST(Session, WriteMetricsJsonProducesAFileWithNonZeroMetrics) {
  support::Metrics::resetAll();
  api::Session S({.Protection = Scheme::Mte4JniSync});
  {
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    jni::jarray A = Main.env().NewIntArray(Scope, 64);
    rt::callNative(Main.thread(), rt::NativeKind::Regular, "work", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(A, &IsCopy);
      mte::store<jni::jint>(P + 0, 7);
      Main.env().ReleaseIntArrayElements(A, P, 0);
      return 0;
    });
    S.runtime().gc().collect();
  }

  const char *Path = "session_metrics_test.json";
  ASSERT_TRUE(S.writeMetricsJson(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  In.close();
  std::remove(Path);

  EXPECT_EQ(Json.front(), '{');
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"mte/access/checked_stores\""), std::string::npos);
  EXPECT_NE(Json.find("\"jni/get_calls\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"rt/gc/cycles\": 1"), std::string::npos) << Json;
  // Nothing reported zero-Get: the snapshot reflects the run above.
  EXPECT_EQ(Json.find("\"jni/get_calls\": 0"), std::string::npos);
}

TEST(Session, FaultTelemetryReachesTheMetricsRing) {
  support::Metrics::resetAll();
  api::Session S({.Protection = Scheme::Mte4JniSync});
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 18);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "bug", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    mte::store<jni::jint>(P + 21, 1); // out of bounds -> sync fault
    Main.env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });
  ASSERT_EQ(S.faults().totalCount(), 1u);

  support::MetricsSnapshot Snap = S.metricsSnapshot();
  EXPECT_EQ(Snap.counterValue("mte/access/mismatch_sync"), 1u);
  ASSERT_EQ(Snap.FaultsTotal, 1u);
  ASSERT_EQ(Snap.Faults.size(), 1u);
  const support::FaultEvent &E = Snap.Faults[0];
  EXPECT_NE(E.Kind.find("SEGV_MTESERR"), std::string::npos);
  EXPECT_TRUE(E.HasAddress);
  EXPECT_TRUE(E.IsWrite);
  EXPECT_NE(E.PointerTag, E.MemoryTag);
  EXPECT_FALSE(E.Backtrace.empty());
}

TEST(Session, MakeEnvGivesIndependentEnvs) {
  api::Session S({.Protection = Scheme::NoProtection});
  api::ScopedAttach Main(S, "main");
  auto Env2 = S.makeEnv();
  // Errors are per-env, like per-thread pending exceptions.
  Env2->GetArrayLength(nullptr);
  EXPECT_TRUE(Env2->ExceptionCheck());
  EXPECT_FALSE(Main.env().ExceptionCheck());
  Env2->ExceptionClear();
}

} // namespace

//===- api_session_test.cpp - The Session façade --------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/MteSystem.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using api::Scheme;

TEST(Session, SchemeNames) {
  EXPECT_STREQ(api::schemeName(Scheme::NoProtection), "no-protection");
  EXPECT_STREQ(api::schemeName(Scheme::GuardedCopy), "guarded-copy");
  EXPECT_STREQ(api::schemeName(Scheme::Mte4JniSync), "mte4jni+sync");
  EXPECT_STREQ(api::schemeName(Scheme::Mte4JniAsync), "mte4jni+async");
}

TEST(Session, WiresCheckModePerScheme) {
  {
    api::Session S({.Protection = Scheme::NoProtection});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::None);
    EXPECT_EQ(S.mtePolicy(), nullptr);
    EXPECT_EQ(S.guardedPolicy(), nullptr);
  }
  {
    api::Session S({.Protection = Scheme::GuardedCopy});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::None);
    EXPECT_NE(S.guardedPolicy(), nullptr);
  }
  {
    api::Session S({.Protection = Scheme::Mte4JniSync});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::Sync);
    EXPECT_NE(S.mtePolicy(), nullptr);
    EXPECT_TRUE(S.runtime().config().TagChecksInNative);
  }
  {
    api::Session S({.Protection = Scheme::Mte4JniAsync});
    EXPECT_EQ(mte::MteSystem::instance().processCheckMode(),
              mte::CheckMode::Async);
  }
}

TEST(Session, SequentialSessionsAreIndependent) {
  for (int Round = 0; Round < 3; ++Round) {
    api::Session S({.Protection = Scheme::Mte4JniSync});
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    jni::jarray A = Main.env().NewIntArray(Scope, 18);
    rt::callNative(Main.thread(), rt::NativeKind::Regular, "bug", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(A, &IsCopy);
      mte::store<jni::jint>(P + 21, 1);
      Main.env().ReleaseIntArrayElements(A, P, 0);
      return 0;
    });
    // Each session starts with a clean fault log.
    EXPECT_EQ(S.faults().totalCount(), 1u) << "round " << Round;
  }
}

TEST(Session, ConfigurationIsPlumbedThrough) {
  api::SessionConfig C;
  C.Protection = Scheme::Mte4JniSync;
  C.Locks = core::LockScheme::GlobalLock;
  C.NumHashTables = 8;
  C.ExcludeAdjacentTags = true;
  C.HeapBytes = 16ull << 20;
  api::Session S(C);
  ASSERT_NE(S.mtePolicy(), nullptr);
  EXPECT_EQ(S.mtePolicy()->allocator().lockScheme(),
            core::LockScheme::GlobalLock);
  EXPECT_EQ(S.mtePolicy()->allocator().table().numTables(), 8u);
  EXPECT_GE(S.runtime().heap().capacity(), 16ull << 20);
}

TEST(Session, StatsReportMentionsTheInterestingNumbers) {
  api::Session S({.Protection = Scheme::Mte4JniSync});
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 64);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "work", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    Main.env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });

  std::string Report = S.statsReport();
  EXPECT_NE(Report.find("mte4jni+sync"), std::string::npos);
  EXPECT_NE(Report.find("heap:"), std::string::npos);
  EXPECT_NE(Report.find("mte4jni: 1 acquires (1 generated / 0 shared)"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("1 releases"), std::string::npos);
  EXPECT_NE(Report.find("faults recorded: 0"), std::string::npos);
}

TEST(Session, GuardedStatsReport) {
  api::Session S({.Protection = Scheme::GuardedCopy});
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 64);
  jni::jboolean IsCopy;
  auto P = Main.env().GetIntArrayElements(A, &IsCopy);
  Main.env().ReleaseIntArrayElements(A, P, 0);

  std::string Report = S.statsReport();
  EXPECT_NE(Report.find("guarded-copy: 1 acquires, 1 releases"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("0 corruptions"), std::string::npos);
}

TEST(Session, MakeEnvGivesIndependentEnvs) {
  api::Session S({.Protection = Scheme::NoProtection});
  api::ScopedAttach Main(S, "main");
  auto Env2 = S.makeEnv();
  // Errors are per-env, like per-thread pending exceptions.
  Env2->GetArrayLength(nullptr);
  EXPECT_TRUE(Env2->ExceptionCheck());
  EXPECT_FALSE(Main.env().ExceptionCheck());
  Env2->ExceptionClear();
}

} // namespace

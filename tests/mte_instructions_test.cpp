//===- mte_instructions_test.cpp - IRG/LDG/STG/ST2G analogs -------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"
#include "mte4jni/mte/ThreadState.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

namespace {

using namespace mte4jni::mte;

class MteInstructionsTest : public ::testing::Test {
protected:
  void SetUp() override {
    MteSystem::instance().reset();
    Arena = std::make_unique<TaggedArena>(1 << 20);
  }
  void TearDown() override {
    Arena.reset();
    MteSystem::instance().reset();
  }
  std::unique_ptr<TaggedArena> Arena;
};

TEST_F(MteInstructionsTest, IrgExcludesTagZeroByDefault) {
  std::set<TagValue> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(irgTag());
  EXPECT_EQ(Seen.count(0), 0u);
  // With 500 draws over 15 tags we should see nearly all of them.
  EXPECT_GE(Seen.size(), 12u);
}

TEST_F(MteInstructionsTest, IrgRetagsPointer) {
  void *Buf = Arena->allocate(16);
  auto P = TaggedPtr<void>::fromRaw(Buf, 0);
  auto Tagged = irg(P);
  EXPECT_EQ(Tagged.raw(), Buf);
  EXPECT_NE(Tagged.tag(), 0);
}

TEST_F(MteInstructionsTest, IrgHonoursSystemExcludeMask) {
  MteSystem::instance().setIrgExcludeMask(0x7FFF); // only tag 15 allowed
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(irgTag(), 15);
  MteSystem::instance().setIrgExcludeMask(0x0001);
}

TEST_F(MteInstructionsTest, StgTagsOneGranule) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(48));
  stg(TaggedPtr<void>::fromRaw(Buf + 16, 9));
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf)), 0);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 16), 9);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 32), 0);
}

TEST_F(MteInstructionsTest, St2gTagsTwoGranules) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(64));
  st2g(TaggedPtr<void>::fromRaw(Buf, 4));
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf)), 4);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 16), 4);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 32), 0);
}

TEST_F(MteInstructionsTest, LdgReturnsRetaggedPointer) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(16));
  stg(TaggedPtr<void>::fromRaw(Buf, 11));
  auto P = ldg(TaggedPtr<void>::fromRaw(Buf, 3)); // wrong tag in
  EXPECT_EQ(P.tag(), 11);                          // true tag out
  EXPECT_EQ(P.raw(), Buf);
}

TEST_F(MteInstructionsTest, SetTagRangeCoversPartialGranules) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(64));
  // 20 bytes from a granule-aligned base: 2 granules.
  setTagRange(TaggedPtr<void>::fromRaw(Buf, 6), 20);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf)), 6);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 16), 6);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 32), 0);
}

TEST_F(MteInstructionsTest, SetTagRangeZeroBytesIsNoOp) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(16));
  setTagRange(TaggedPtr<void>::fromRaw(Buf, 6), 0);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf)), 0);
}

TEST_F(MteInstructionsTest, ClearTagRange) {
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(64));
  setTagRange(TaggedPtr<void>::fromRaw(Buf, 6), 64);
  clearTagRange(reinterpret_cast<uint64_t>(Buf) + 16, 32);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf)), 6);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 16), 0);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 32), 0);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf) + 48), 6);
}

TEST_F(MteInstructionsTest, ClearTagRangeStripsPointerTag) {
  // clearTagRange takes an address that may still carry a tag.
  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(16));
  setTagRange(TaggedPtr<void>::fromRaw(Buf, 6), 16);
  uint64_t TaggedAddr = withPointerTag(reinterpret_cast<uint64_t>(Buf), 6);
  clearTagRange(TaggedAddr, 16);
  EXPECT_EQ(ldgTag(reinterpret_cast<uint64_t>(Buf)), 0);
}

TEST_F(MteInstructionsTest, StatsCountInstructionActivity) {
  MteStats &Stats = MteSystem::instance().stats();
  uint64_t IrgBefore = Stats.IrgCount.load();
  uint64_t StgBefore = Stats.StgGranules.load();
  uint64_t LdgBefore = Stats.LdgCount.load();

  uint8_t *Buf = static_cast<uint8_t *>(Arena->allocate(64));
  (void)irgTag();
  setTagRange(TaggedPtr<void>::fromRaw(Buf, 2), 64); // 4 granules
  (void)ldgTag(reinterpret_cast<uint64_t>(Buf));

  EXPECT_EQ(Stats.IrgCount.load(), IrgBefore + 1);
  EXPECT_EQ(Stats.StgGranules.load(), StgBefore + 4);
  EXPECT_EQ(Stats.LdgCount.load(), LdgBefore + 1);
}

// Standalone (not TEST_F): resets the MteSystem mid-test, so it must not
// hold a TaggedArena across the reset.
TEST(MteInstructionsSeed, IrgDeterministicAcrossRunsWithSeed) {
  // Per-thread RNGs are seeded from the system seed: a fresh thread with
  // the same system seed draws the same tag sequence.
  MteSystem::instance().reset();
  MteSystem::instance().setRngSeed(777);
  std::vector<TagValue> First;
  std::thread([&] {
    for (int I = 0; I < 16; ++I)
      First.push_back(irgTag());
  }).join();

  MteSystem::instance().reset();
  MteSystem::instance().setRngSeed(777);
  std::vector<TagValue> Second;
  std::thread([&] {
    for (int I = 0; I < 16; ++I)
      Second.push_back(irgTag());
  }).join();

  EXPECT_EQ(First, Second);
  MteSystem::instance().reset();
}

} // namespace

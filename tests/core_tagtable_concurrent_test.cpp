//===- core_tagtable_concurrent_test.cpp - Lock-free TagTable races ----------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Hammers the lock-free TagTable fast path from many threads: the
// resurrection race (a release dropping to zero while an acquire
// re-tags), slot tombstoning and reuse, probe-window overflow into the
// locked map, and the invariants the state-word design guarantees — the
// reference count never goes negative (orphan counter stays zero for
// balanced workloads), tags read back valid while held, and liveEntries
// converges to zero once every holder is gone.
//
// Designed to run under TSan: configure with -DM4J_SANITIZE=thread.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/core/TagTable.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using core::TagAllocator;
using core::TagAllocatorOptions;
using core::TagTable;
using core::TagTableKind;

class TagTableConcurrentTest : public ::testing::Test {
protected:
  void SetUp() override {
    mte::MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(8 << 20);
  }
  void TearDown() override {
    Arena.reset();
    mte::MteSystem::instance().reset();
  }

  uint64_t allocRange(uint64_t Bytes) {
    void *P = Arena->allocate(Bytes);
    EXPECT_NE(P, nullptr);
    return reinterpret_cast<uint64_t>(P);
  }

  std::unique_ptr<mte::TaggedArena> Arena;
};

/// Every thread loops acquire/verify/release on the SAME object: the
/// refcount rides the 0<->1 boundary constantly, which is exactly the
/// resurrection race (an acquire re-tagging while a release clears).
TEST_F(TagTableConcurrentTest, ResurrectionRaceOnOneObject) {
  TagAllocatorOptions Options;
  Options.Locks = TagTableKind::LockFree;
  Options.EraseDeadEntries = true; // tombstone/reuse on every death
  TagAllocator Alloc(Options);
  uint64_t Begin = allocRange(256);

  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I < kIters; ++I) {
        uint64_t Bits = Alloc.acquire(Begin, Begin + 256);
        // While we hold a reference the count is >= 1, so the granule
        // tags cannot be cleared or regenerated under us.
        ASSERT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits));
        ASSERT_EQ(mte::ldgTag(Begin + 240), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 256);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  const auto &Stats = Alloc.stats();
  EXPECT_EQ(Stats.Acquires.value(), uint64_t(kThreads) * kIters);
  EXPECT_EQ(Stats.Releases.value(), uint64_t(kThreads) * kIters);
  // Balanced acquire/release means a refcount that never went negative:
  // no release ever found the count at zero.
  EXPECT_EQ(Stats.OrphanReleases.value(), 0u);
  // Drain the deferred (lingering) tags, then every generated tag has
  // been cleared by an exact last holder or a reclaim.
  Alloc.reclaimAll();
  EXPECT_EQ(Stats.TagsGenerated.value(), Stats.TagsCleared.value());
  EXPECT_EQ(Stats.TagsGenerated.value() + Stats.TagsShared.value(),
            Stats.Acquires.value());
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
  EXPECT_EQ(mte::ldgTag(Begin), 0);
}

/// Threads hammer a mix of private and shared objects so fast-path
/// increments, slow-path 0->1 transitions, tombstoning and slot reuse all
/// interleave across shards.
TEST_F(TagTableConcurrentTest, MixedObjectsConvergeToEmpty) {
  TagAllocatorOptions Options;
  Options.Locks = TagTableKind::LockFree;
  Options.EraseDeadEntries = true;
  TagAllocator Alloc(Options);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr int kShared = 4;
  std::vector<uint64_t> Shared;
  for (int I = 0; I < kShared; ++I)
    Shared.push_back(allocRange(1024));
  std::vector<uint64_t> Private;
  for (int T = 0; T < kThreads; ++T)
    Private.push_back(allocRange(1024));

  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I < kIters; ++I) {
        uint64_t Begin =
            (I % 3) ? Shared[static_cast<size_t>(I % kShared)]
                    : Private[static_cast<size_t>(T)];
        uint64_t Bits = Alloc.acquire(Begin, Begin + 1024);
        ASSERT_EQ(mte::ldgTag(Begin + 512), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 1024);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Alloc.stats().OrphanReleases.value(), 0u);
  Alloc.reclaimAll();
  EXPECT_EQ(Alloc.stats().TagsGenerated.value(),
            Alloc.stats().TagsCleared.value());
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
}

/// A tiny slot array (one shard, one probe window) forces most entries
/// through the overflow map: the lock-free array and the locked overflow
/// path must agree on reference counting and tag lifecycle.
TEST_F(TagTableConcurrentTest, ProbeWindowOverflowSpillsToLockedMap) {
  TagAllocatorOptions Options;
  Options.Locks = TagTableKind::LockFree;
  Options.NumTables = 1;
  Options.SlotsPerShard = TagTable::kProbeWindow; // minimum legal array
  Options.EraseDeadEntries = true;
  TagAllocator Alloc(Options);

  constexpr int kObjects = 64; // 4x the slot capacity
  std::vector<uint64_t> Begins;
  for (int I = 0; I < kObjects; ++I)
    Begins.push_back(allocRange(128));

  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I < kIters; ++I) {
        uint64_t Begin =
            Begins[static_cast<size_t>((I * kThreads + T) % kObjects)];
        uint64_t Bits = Alloc.acquire(Begin, Begin + 128);
        ASSERT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 128);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Alloc.stats().OrphanReleases.value(), 0u);
  Alloc.reclaimAll();
  EXPECT_EQ(Alloc.stats().TagsGenerated.value(),
            Alloc.stats().TagsCleared.value());
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
  for (uint64_t Begin : Begins)
    EXPECT_EQ(mte::ldgTag(Begin), 0);
}

/// Nested holds from many threads: the count climbs well above one, every
/// holder sees the same shared tag, and only the very last release clears.
TEST_F(TagTableConcurrentTest, DeepNestingSharesOneTag) {
  TagAllocatorOptions Options;
  Options.Locks = TagTableKind::LockFree;
  TagAllocator Alloc(Options);
  uint64_t Begin = allocRange(512);

  constexpr int kThreads = 8;
  constexpr int kDepth = 64;
  std::atomic<uint32_t> TagsSeen{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&] {
      uint64_t Bits[kDepth];
      for (int D = 0; D < kDepth; ++D) {
        Bits[D] = Alloc.acquire(Begin, Begin + 512);
        TagsSeen.fetch_or(1u << mte::pointerTagOf(Bits[D]));
      }
      for (int D = kDepth - 1; D >= 0; --D) {
        ASSERT_EQ(Bits[D], Bits[0]); // nested pins share the tag
        Alloc.release(Begin, Begin + 512);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  // All threads overlapped on one object whose count never hit zero after
  // the first acquire... or hit zero between waves; either way at most a
  // handful of distinct tags, never tag 0.
  EXPECT_EQ(TagsSeen.load() & 1u, 0u);
  EXPECT_EQ(Alloc.stats().OrphanReleases.value(), 0u);
  Alloc.reclaimAll();
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  EXPECT_EQ(Alloc.stats().TagsGenerated.value(),
            Alloc.stats().TagsCleared.value());
}

/// Single-threaded sanity for the slot primitives themselves: probe,
/// fast-path accept/reject, tombstone and reuse with an advancing epoch.
TEST_F(TagTableConcurrentTest, SlotPrimitives) {
  TagTable Table(4, TagTableKind::LockFree, 64);
  uint64_t Begin = 0x4000;

  // Absent: probe misses, fast paths refuse.
  EXPECT_EQ(Table.probeSlot(Begin), nullptr);

  // Insert under the shard lock.
  {
    auto Lock = Table.lockShard(Begin);
    TagTable::Slot *S = Table.slotLocked(Begin, /*Create=*/true, Lock);
    ASSERT_NE(S, nullptr);
    // Fresh slot: count 0 — the fast acquire path must refuse (the tag
    // work has not happened).
    EXPECT_FALSE(TagTable::tryAcquireShared(*S, Begin));
    S->State.store(TagTable::packState(1, 1), std::memory_order_release);
  }

  TagTable::Slot *S = Table.probeSlot(Begin);
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(TagTable::tryAcquireShared(*S, Begin)); // 1 -> 2
  EXPECT_TRUE(TagTable::tryReleaseShared(*S, Begin)); // 2 -> 1
  // Count 1: releasing to zero must go to the slow path.
  EXPECT_FALSE(TagTable::tryReleaseShared(*S, Begin));
  // Wrong key: both fast paths refuse.
  EXPECT_FALSE(TagTable::tryAcquireShared(*S, Begin + 16));
  EXPECT_FALSE(TagTable::tryReleaseShared(*S, Begin + 16));

  // Last release + tombstone, then reuse for another key.
  {
    auto Lock = Table.lockShard(Begin);
    S->State.store(TagTable::packState(1, 0), std::memory_order_release);
    Table.tombstoneLocked(*S, Lock);
  }
  EXPECT_EQ(Table.probeSlot(Begin), nullptr);
  EXPECT_EQ(Table.liveEntries(), 0u);
  EXPECT_EQ(Table.stats().Erases, 1u);
}

/// The recycle-ABA property under deferred tag-clear: a CAS that stalled
/// while its slot was lingering for key A must never succeed once the slot
/// has been reclaimed — let alone after it was tombstoned and reused for a
/// different key B. The reclaim's epoch bump is what kills it; this test
/// replays the stalled CAS against every later stage of the slot's life.
TEST_F(TagTableConcurrentTest, SlotRecycleAbaUnderDeferredClear) {
  TagTable Table(1, TagTableKind::LockFree, TagTable::kProbeWindow,
                 /*ResidentBudgetBytes=*/1 << 20);
  ASSERT_EQ(Table.slotsPerShard(), TagTable::kProbeWindow);

  // Claim every slot of the single shard so the only reusable slot later
  // is A's tombstone (the probe window spans the whole array, so any new
  // key's window covers it). Keys come from the arena: reclaim really
  // clears granule tags, which asserts outside a registered region.
  const uint64_t Base = allocRange((TagTable::kProbeWindow + 1) * 64);
  const uint64_t KeyA = Base;
  TagTable::Slot *SlotA = nullptr;
  {
    auto Lock = Table.lockShard(KeyA);
    SlotA = Table.slotLocked(KeyA, /*Create=*/true, Lock);
    ASSERT_NE(SlotA, nullptr);
    for (unsigned I = 1; I < TagTable::kProbeWindow; ++I) {
      TagTable::Slot *Filler =
          Table.slotLocked(KeyA + I * 16, /*Create=*/true, Lock);
      ASSERT_NE(Filler, nullptr);
      ASSERT_NE(Filler, SlotA);
      // Keep fillers held so they are never reusable.
      Filler->State.store(TagTable::packState(1, 1, /*Resident=*/true),
                          std::memory_order_release);
    }
    // A's first holder: tags written, resident, epoch advanced. Publish
    // charges the resident budget (refunded when the tags are reclaimed).
    SlotA->Bytes.store(64, std::memory_order_relaxed);
    Table.chargeResident(KeyA, 64);
    SlotA->State.store(TagTable::packState(1, 1, /*Resident=*/true),
                       std::memory_order_release);
  }

  // Deferred release: {1, resident} -> {0, resident} (lingering).
  bool Deferred = false;
  ASSERT_TRUE(Table.releaseFast(*SlotA, KeyA, Deferred));
  ASSERT_TRUE(Deferred);

  // A thread stalls here: it read the lingering state and passed the key
  // check, and is about to CAS State -> State+1 (the warm acquire).
  const uint64_t StalledState =
      SlotA->State.load(std::memory_order_acquire);
  ASSERT_EQ(TagTable::refCountOf(StalledState), 0u);
  ASSERT_TRUE(TagTable::residentOf(StalledState));

  auto StalledCasSucceeds = [&] {
    uint64_t Expected = StalledState;
    return SlotA->State.compare_exchange_strong(Expected, StalledState + 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire);
  };

  // Stage 1 — reclaim + tombstone: the epoch bump invalidates the stalled
  // state word even though the refcount is back at 0.
  {
    auto Lock = Table.lockShard(KeyA);
    Table.tombstoneLocked(*SlotA, Lock);
  }
  EXPECT_FALSE(StalledCasSucceeds());

  // Stage 2 — a different key reuses the same physical slot.
  const uint64_t KeyB = Base + TagTable::kProbeWindow * 16;
  {
    auto Lock = Table.lockShard(KeyB);
    TagTable::Slot *SlotB = Table.slotLocked(KeyB, /*Create=*/true, Lock);
    ASSERT_EQ(SlotB, SlotA); // same slot, new tenant
    SlotB->Bytes.store(128, std::memory_order_relaxed);
    Table.chargeResident(KeyB, 128);
    SlotB->State.store(
        TagTable::packState(
            TagTable::epochOf(SlotB->State.load(std::memory_order_relaxed)) +
                1,
            1, /*Resident=*/true),
        std::memory_order_release);
  }
  EXPECT_FALSE(StalledCasSucceeds());
  // And the full fast path agrees: the key is B's now.
  EXPECT_FALSE(TagTable::tryAcquireShared(*SlotA, KeyA));

  // Stage 3 — B releases (deferred) so the refcount is 0 and the resident
  // bit is set again: the *shape* of the stalled state recurs, but the
  // epoch cannot, so the stalled CAS still loses.
  Deferred = false;
  ASSERT_TRUE(Table.releaseFast(*SlotA, KeyB, Deferred));
  ASSERT_TRUE(Deferred);
  EXPECT_FALSE(StalledCasSucceeds());
}

/// liveEntries must mean the same thing for all three table kinds: holders
/// (and, under deferral, lingering tags) — not storage. Before the fix the
/// lock-free build counted every claimed slot as live, so an identical
/// workload disagreed across kinds.
TEST_F(TagTableConcurrentTest, LiveEntriesAgreeAcrossKinds) {
  constexpr size_t kObjects = 12;
  std::vector<uint64_t> Begins;
  for (size_t I = 0; I < kObjects; ++I)
    Begins.push_back(allocRange(128));

  for (TagTableKind Kind :
       {TagTableKind::LockFree, TagTableKind::TwoTierMutex,
        TagTableKind::GlobalLock}) {
    TagAllocatorOptions Options;
    Options.Locks = Kind;
    Options.DeferredTagClear = false; // liveness without lingering
    TagAllocator Alloc(Options);

    for (uint64_t B : Begins)
      Alloc.acquire(B, B + 128);
    EXPECT_EQ(Alloc.table().liveEntries(), kObjects)
        << core::tagTableKindName(Kind);

    for (size_t I = 0; I < kObjects / 2; ++I)
      Alloc.release(Begins[I], Begins[I] + 128);
    EXPECT_EQ(Alloc.table().liveEntries(), kObjects - kObjects / 2)
        << core::tagTableKindName(Kind);

    for (size_t I = kObjects / 2; I < kObjects; ++I)
      Alloc.release(Begins[I], Begins[I] + 128);
    EXPECT_EQ(Alloc.table().liveEntries(), 0u)
        << core::tagTableKindName(Kind);
  }

  // With deferral ON, a lingering range still counts as live (its tags
  // are), and reclaiming converges all kinds to the same answer again.
  TagAllocatorOptions Options;
  Options.Locks = TagTableKind::LockFree;
  TagAllocator Deferred(Options);
  uint64_t B = Begins[0];
  Deferred.acquire(B, B + 128);
  Deferred.release(B, B + 128);
  EXPECT_EQ(Deferred.table().liveEntries(), 1u); // lingering counts
  Deferred.reclaimAll();
  EXPECT_EQ(Deferred.table().liveEntries(), 0u);
}

} // namespace

//===- jni_env_test.cpp - The JNI environment surface ---------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using namespace mte4jni::jni;

class JniEnvTest : public ::testing::Test {
protected:
  void SetUp() override {
    api::SessionConfig C;
    C.Protection = api::Scheme::NoProtection;
    C.HeapBytes = 8 << 20;
    S = std::make_unique<api::Session>(C);
    Main = std::make_unique<api::ScopedAttach>(*S, "main");
    Scope = std::make_unique<rt::HandleScope>(S->runtime());
  }
  void TearDown() override {
    Scope.reset();
    Main.reset();
    S.reset();
  }

  JniEnv &env() { return Main->env(); }

  std::unique_ptr<api::Session> S;
  std::unique_ptr<api::ScopedAttach> Main;
  std::unique_ptr<rt::HandleScope> Scope;
};

TEST_F(JniEnvTest, NewArrayAndLength) {
  jintArray A = env().NewIntArray(*Scope, 37);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(env().GetArrayLength(A), 37);
  EXPECT_FALSE(env().ExceptionCheck());
}

TEST_F(JniEnvTest, NewArrayNegativeLength) {
  jintArray A = env().NewIntArray(*Scope, -1);
  EXPECT_EQ(A, nullptr);
  EXPECT_TRUE(env().ExceptionCheck());
  EXPECT_NE(env().exceptionMessage().find("NegativeArraySize"),
            std::string::npos);
  env().ExceptionClear();
  EXPECT_FALSE(env().ExceptionCheck());
}

TEST_F(JniEnvTest, AllPrimitiveTypesRoundTrip) {
  // One Get/Set/Region/Elements pass per primitive type.
#define CHECK_TYPE(Name, T, V1, V2)                                           \
  {                                                                            \
    jarray A = env().New##Name##Array(*Scope, 8);                              \
    T Src[8];                                                                  \
    for (int I = 0; I < 8; ++I)                                                \
      Src[I] = static_cast<T>(I % 2 ? V1 : V2);                                \
    env().Set##Name##ArrayRegion(A, 0, 8, Src);                                \
    T Dst[8] = {};                                                             \
    env().Get##Name##ArrayRegion(A, 0, 8, Dst);                                \
    for (int I = 0; I < 8; ++I)                                                \
      EXPECT_EQ(Dst[I], Src[I]);                                               \
    jboolean IsCopy;                                                           \
    auto E = env().Get##Name##ArrayElements(A, &IsCopy);                       \
    EXPECT_EQ(mte::load(E), Src[0]);                                           \
    env().Release##Name##ArrayElements(A, E, 0);                               \
    EXPECT_FALSE(env().ExceptionCheck());                                      \
  }

  CHECK_TYPE(Boolean, jboolean, 1, 0)
  CHECK_TYPE(Byte, jbyte, -7, 9)
  CHECK_TYPE(Char, jchar, 0x1234, 0x00FF)
  CHECK_TYPE(Short, jshort, -1000, 2000)
  CHECK_TYPE(Int, jint, -123456, 654321)
  CHECK_TYPE(Long, jlong, -5000000000LL, 7000000000LL)
  CHECK_TYPE(Float, jfloat, 1.5f, -2.25f)
  CHECK_TYPE(Double, jdouble, 3.5, -4.75)
#undef CHECK_TYPE
}

TEST_F(JniEnvTest, RegionBoundsChecked) {
  jintArray A = env().NewIntArray(*Scope, 10);
  jint Buf[10] = {};

  env().GetIntArrayRegion(A, 0, 10, Buf);
  EXPECT_FALSE(env().ExceptionCheck());

  env().GetIntArrayRegion(A, 5, 6, Buf); // start+len > length
  EXPECT_TRUE(env().ExceptionCheck());
  EXPECT_NE(env().exceptionMessage().find("ArrayIndexOutOfBounds"),
            std::string::npos);
  env().ExceptionClear();

  env().SetIntArrayRegion(A, -1, 2, Buf); // negative start
  EXPECT_TRUE(env().ExceptionCheck());
  env().ExceptionClear();

  env().GetIntArrayRegion(A, 0, -3, Buf); // negative length
  EXPECT_TRUE(env().ExceptionCheck());
  env().ExceptionClear();

  // Bounds errors land in the fault log as JNI check errors.
  EXPECT_EQ(S->faults().countOf(mte::FaultKind::JniCheckError), 3u);
}

TEST_F(JniEnvTest, TypeMismatchRejected) {
  jintArray A = env().NewIntArray(*Scope, 4);
  jboolean IsCopy;
  auto E = env().GetLongArrayElements(A, &IsCopy); // wrong element type
  EXPECT_TRUE(E.isNull());
  EXPECT_TRUE(env().ExceptionCheck());
  env().ExceptionClear();
}

TEST_F(JniEnvTest, NullArrayRejected) {
  jboolean IsCopy;
  auto E = env().GetIntArrayElements(nullptr, &IsCopy);
  EXPECT_TRUE(E.isNull());
  EXPECT_TRUE(env().ExceptionCheck());
  EXPECT_NE(env().exceptionMessage().find("NullPointerException"),
            std::string::npos);
  env().ExceptionClear();

  EXPECT_EQ(env().GetArrayLength(nullptr), -1);
  env().ExceptionClear();
}

TEST_F(JniEnvTest, GetElementsPinsObject) {
  jintArray A = env().NewIntArray(*Scope, 4);
  EXPECT_EQ(A->pinCount(), 0u);
  jboolean IsCopy;
  auto E = env().GetIntArrayElements(A, &IsCopy);
  EXPECT_EQ(A->pinCount(), 1u);
  auto E2 = env().GetIntArrayElements(A, &IsCopy);
  EXPECT_EQ(A->pinCount(), 2u);
  env().ReleaseIntArrayElements(A, E2, 0);
  env().ReleaseIntArrayElements(A, E, 0);
  EXPECT_EQ(A->pinCount(), 0u);
}

TEST_F(JniEnvTest, JniCommitKeepsPinAndBuffer) {
  jintArray A = env().NewIntArray(*Scope, 4);
  jboolean IsCopy;
  auto E = env().GetIntArrayElements(A, &IsCopy);
  mte::store<jint>(E, 77);
  env().ReleaseIntArrayElements(A, E, JNI_COMMIT);
  EXPECT_EQ(A->pinCount(), 1u) << "JNI_COMMIT keeps the buffer live";
  EXPECT_EQ(rt::arrayData<jint>(A)[0], 77);
  mte::store<jint>(E, 88);
  env().ReleaseIntArrayElements(A, E, 0);
  EXPECT_EQ(A->pinCount(), 0u);
  EXPECT_EQ(rt::arrayData<jint>(A)[0], 88);
}

TEST_F(JniEnvTest, CriticalTracksRuntimeDepth) {
  jintArray A = env().NewIntArray(*Scope, 4);
  jboolean IsCopy;
  EXPECT_EQ(S->runtime().criticalDepth(), 0u);
  auto P = env().GetPrimitiveArrayCritical(A, &IsCopy);
  EXPECT_EQ(S->runtime().criticalDepth(), 1u);
  env().ReleasePrimitiveArrayCritical(A, P, 0);
  EXPECT_EQ(S->runtime().criticalDepth(), 0u);
}

TEST_F(JniEnvTest, StringCreationAndQueries) {
  jstring Str = env().NewStringUTF(*Scope, "hello");
  ASSERT_NE(Str, nullptr);
  EXPECT_EQ(env().GetStringLength(Str), 5);
  EXPECT_EQ(env().GetStringUTFLength(Str), 5);

  jchar Units[] = {'a', 0x20AC}; // "a€"
  jstring Str2 = env().NewString(*Scope, Units, 2);
  EXPECT_EQ(env().GetStringLength(Str2), 2);
  EXPECT_EQ(env().GetStringUTFLength(Str2), 4); // 1 + 3 bytes
}

TEST_F(JniEnvTest, GetStringCharsDirect) {
  jstring Str = env().NewStringUTF(*Scope, "abc");
  jboolean IsCopy;
  auto Chars = env().GetStringChars(Str, &IsCopy);
  EXPECT_EQ(IsCopy, JNI_FALSE); // no-protection: direct
  EXPECT_EQ(mte::load(Chars), 'a');
  EXPECT_EQ(mte::load(Chars + 2), 'c');
  env().ReleaseStringChars(Str, Chars);
}

TEST_F(JniEnvTest, GetStringUTFCharsIsNulTerminatedCopy) {
  jstring Str = env().NewStringUTF(*Scope, "xyz");
  jboolean IsCopy;
  auto Utf = env().GetStringUTFChars(Str, &IsCopy);
  EXPECT_EQ(IsCopy, JNI_TRUE);
  EXPECT_EQ(mte::load(Utf), 'x');
  EXPECT_EQ(mte::load(Utf + 3), '\0');
  env().ReleaseStringUTFChars(Str, Utf);
}

TEST_F(JniEnvTest, ReleaseUTFCharsWithBogusPointer) {
  jstring Str = env().NewStringUTF(*Scope, "xyz");
  char Bogus[4];
  env().ReleaseStringUTFChars(
      Str, mte::TaggedPtr<const char>::fromRaw(Bogus, 0));
  EXPECT_TRUE(env().ExceptionCheck());
  env().ExceptionClear();
}

TEST_F(JniEnvTest, StringCriticalBlocksGcLikeArrayCritical) {
  jstring Str = env().NewStringUTF(*Scope, "critical");
  jboolean IsCopy;
  auto P = env().GetStringCritical(Str, &IsCopy);
  EXPECT_EQ(S->runtime().criticalDepth(), 1u);
  EXPECT_EQ(mte::load(P), 'c');
  env().ReleaseStringCritical(Str, P);
  EXPECT_EQ(S->runtime().criticalDepth(), 0u);
}

TEST_F(JniEnvTest, NewStringUTFNullRejected) {
  jstring Str = env().NewStringUTF(*Scope, nullptr);
  EXPECT_EQ(Str, nullptr);
  EXPECT_TRUE(env().ExceptionCheck());
  env().ExceptionClear();
}

TEST_F(JniEnvTest, StringOnArrayInterfaceRejected) {
  jstring Str = env().NewStringUTF(*Scope, "notanarray");
  jboolean IsCopy;
  auto E = env().GetIntArrayElements(Str, &IsCopy);
  EXPECT_TRUE(E.isNull());
  EXPECT_TRUE(env().ExceptionCheck());
  env().ExceptionClear();
}

} // namespace

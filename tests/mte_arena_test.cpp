//===- mte_arena_test.cpp - TaggedArena allocator -------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

namespace {

using namespace mte4jni::mte;

class TaggedArenaTest : public ::testing::Test {
protected:
  void SetUp() override { MteSystem::instance().reset(); }
  void TearDown() override { MteSystem::instance().reset(); }
};

TEST_F(TaggedArenaTest, RegistersItsRegion) {
  {
    TaggedArena Arena(1 << 16);
    EXPECT_TRUE(MteSystem::instance().isTaggedAddress(Arena.begin()));
    EXPECT_TRUE(
        MteSystem::instance().isTaggedAddress(Arena.end() - 1));
  }
  // Destroyed arena unregisters.
  EXPECT_EQ(MteSystem::instance().regions()->size(), 0u);
}

TEST_F(TaggedArenaTest, AllocationsAreGranuleAligned) {
  TaggedArena Arena(1 << 16);
  for (uint64_t Size : {1ull, 7ull, 16ull, 17ull, 100ull, 4096ull}) {
    void *P = Arena.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<uint64_t>(P) % kGranuleSize, 0u);
    EXPECT_TRUE(Arena.contains(P));
  }
}

TEST_F(TaggedArenaTest, FreeListReuse) {
  TaggedArena Arena(1 << 16);
  void *A = Arena.allocate(100);
  Arena.deallocate(A);
  void *B = Arena.allocate(100); // same size class: reused
  EXPECT_EQ(A, B);
  Arena.deallocate(B);
}

TEST_F(TaggedArenaTest, DistinctBlocksDoNotOverlap) {
  TaggedArena Arena(1 << 18);
  std::set<uint64_t> Starts;
  std::vector<void *> Blocks;
  for (int I = 0; I < 100; ++I) {
    void *P = Arena.allocate(64);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(Starts.insert(reinterpret_cast<uint64_t>(P)).second);
    Blocks.push_back(P);
  }
  // All 64-byte blocks at least 64 bytes apart.
  uint64_t Prev = 0;
  for (uint64_t S : Starts) {
    if (Prev) {
      EXPECT_GE(S - Prev, 64u);
    }
    Prev = S;
  }
  for (void *P : Blocks)
    Arena.deallocate(P);
  EXPECT_EQ(Arena.bytesInUse(), 0u);
}

TEST_F(TaggedArenaTest, ExhaustionReturnsNull) {
  TaggedArena Arena(256);
  void *A = Arena.allocate(128);
  void *B = Arena.allocate(128);
  EXPECT_NE(A, nullptr);
  EXPECT_NE(B, nullptr);
  EXPECT_EQ(Arena.allocate(128), nullptr);
  Arena.deallocate(A);
  EXPECT_NE(Arena.allocate(128), nullptr); // free list refill
}

TEST_F(TaggedArenaTest, BytesInUseTracksRoundedSizes) {
  TaggedArena Arena(1 << 16);
  EXPECT_EQ(Arena.bytesInUse(), 0u);
  void *A = Arena.allocate(17); // rounds to 32
  EXPECT_EQ(Arena.bytesInUse(), 32u);
  void *B = Arena.allocate(16);
  EXPECT_EQ(Arena.bytesInUse(), 48u);
  Arena.deallocate(A);
  EXPECT_EQ(Arena.bytesInUse(), 16u);
  Arena.deallocate(B);
  EXPECT_EQ(Arena.bytesInUse(), 0u);
}

TEST_F(TaggedArenaTest, NullDeallocateIsNoOp) {
  TaggedArena Arena(1 << 12);
  Arena.deallocate(nullptr); // must not crash
}

TEST_F(TaggedArenaTest, ConcurrentAllocate) {
  TaggedArena Arena(4 << 20);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&Arena] {
      for (int I = 0; I < kIters; ++I) {
        void *P = Arena.allocate(64 + (I % 3) * 16);
        ASSERT_NE(P, nullptr);
        // Touch the block to catch overlap corruption.
        std::memset(P, 0xAB, 64);
        Arena.deallocate(P);
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Arena.bytesInUse(), 0u);
}

} // namespace

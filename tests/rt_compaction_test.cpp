//===- rt_compaction_test.cpp - Mark-compact GC and JNI pins --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// ART's collectors move objects; JNI's Get* interfaces pin the ones native
// code holds raw pointers into. The compacting GC mode makes that
// interaction observable: unpinned survivors slide toward the heap base
// (handle roots rewritten), JNI-held objects stay put, and data survives
// the move bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

RuntimeConfig compactingConfig() {
  RuntimeConfig C;
  C.Heap.CapacityBytes = 4 << 20;
  C.Gc.Mode = GcMode::Compacting;
  return C;
}

TEST(Compaction, SurvivorsSlideTowardBase) {
  Runtime RT(compactingConfig());
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    // A, garbage, B — after collection B should slide into garbage's slot.
    ObjectHeader *A = RT.newPrimArray(Scope, PrimType::Int, 64);
    ObjectHeader *Garbage = RT.heap().allocPrimArray(PrimType::Int, 64);
    ObjectHeader *B = RT.newPrimArray(Scope, PrimType::Int, 64);
    rt::arrayData<int32_t>(B)[0] = 1234;
    uint64_t GarbageAddr = reinterpret_cast<uint64_t>(Garbage);
    uint64_t OldB = reinterpret_cast<uint64_t>(B);

    GcResult Result = RT.gc().collect();
    EXPECT_EQ(Result.ObjectsFreed, 1u);
    EXPECT_EQ(Result.ObjectsMoved, 1u);

    // The root slot now points at the moved object.
    ObjectHeader *NewB = Scope.roots()[1];
    EXPECT_NE(reinterpret_cast<uint64_t>(NewB), OldB);
    EXPECT_EQ(reinterpret_cast<uint64_t>(NewB), GarbageAddr)
        << "B should have slid into the freed gap";
    EXPECT_EQ(rt::arrayData<int32_t>(NewB)[0], 1234)
        << "payload must survive the move";
    EXPECT_TRUE(RT.heap().isLiveObject(NewB));
    EXPECT_FALSE(RT.heap().isLiveObject(B));
    (void)A;
  }
  RT.detachCurrentThread();
}

TEST(Compaction, PinnedObjectsDoNotMove) {
  Runtime RT(compactingConfig());
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    ObjectHeader *Garbage = RT.heap().allocPrimArray(PrimType::Int, 64);
    ObjectHeader *Held = RT.newPrimArray(Scope, PrimType::Int, 64);
    (void)Garbage;
    uint64_t HeldAddr = reinterpret_cast<uint64_t>(Held);

    Held->pin(); // what a JNI Get does
    GcResult Result = RT.gc().collect();
    EXPECT_EQ(Result.ObjectsMoved, 0u)
        << "the only survivor is pinned: nothing may move";
    EXPECT_EQ(Result.ObjectsPinnedInPlace, 1u);
    EXPECT_EQ(reinterpret_cast<uint64_t>(Scope.roots()[0]), HeldAddr);
    Held->unpin();

    // Once released, the next cycle slides it down.
    GcResult Second = RT.gc().collect();
    EXPECT_EQ(Second.ObjectsMoved, 1u);
    EXPECT_NE(reinterpret_cast<uint64_t>(Scope.roots()[0]), HeldAddr);
  }
  RT.detachCurrentThread();
}

TEST(Compaction, JniHeldArraySurvivesCompactionEndToEnd) {
  // Through the whole stack, under MTE4JNI: native code holds an array
  // across a compacting collection; its raw (tagged) pointer must stay
  // valid because the pin blocks the move, and the tags stay put with it.
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  // Re-wire the GC mode (Session defaults to mark-sweep).
  // Build a second runtime config path: use the runtime's GC directly.
  // (Compacting + Session is exercised via RuntimeConfig in the tests
  // above; here we emulate by pinning + collecting.)
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jarray Garbage = S.runtime().heap().allocPrimArray(PrimType::Int, 64);
  (void)Garbage;
  jni::jarray Array = Main.env().NewIntArray(Scope, 128);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "holder", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(Array, &IsCopy);
    mte::store<jni::jint>(P, 42);

    S.runtime().gc().collect(); // pin keeps Array in place

    // The pointer (and its tag) must still be good.
    EXPECT_EQ(mte::load<jni::jint>(P), 42);
    Main.env().ReleaseIntArrayElements(Array, P, 0);
    return 0;
  });
  EXPECT_EQ(S.faults().totalCount(), 0u);
}

TEST(Compaction, AllocationReusesReclaimedSpace) {
  Runtime RT(compactingConfig());
  RT.attachCurrentThread("main");
  HandleScope Scope(RT);

  // Fill a small heap with garbage, collect, and verify the space is
  // allocatable again (compaction resets the bump frontier).
  uint64_t Before = RT.heap().stats().BytesLive;
  for (int I = 0; I < 100; ++I)
    RT.heap().allocPrimArray(PrimType::Long, 512);
  RT.gc().collect();
  EXPECT_EQ(RT.heap().stats().BytesLive, Before);
  // This would not fit if the frontier had not been pulled back.
  for (int I = 0; I < 100; ++I)
    ASSERT_NE(RT.heap().allocPrimArray(PrimType::Long, 512), nullptr);
  RT.gc().collect();
  RT.detachCurrentThread();
}

TEST(Compaction, ManyObjectsManyCycles) {
  Runtime RT(compactingConfig());
  RT.attachCurrentThread("main");
  HandleScope Scope(RT);
  support::Xoshiro256 Rng(5);

  // Interleave rooted and garbage objects, collect repeatedly, verify
  // every rooted payload survives every cycle.
  std::vector<uint32_t> Expected;
  for (int I = 0; I < 40; ++I) {
    ObjectHeader *Obj = RT.newPrimArray(Scope, PrimType::Int, 32);
    uint32_t Token = static_cast<uint32_t>(Rng.next());
    rt::arrayData<int32_t>(Obj)[7] = static_cast<int32_t>(Token);
    Expected.push_back(Token);
    for (int G = 0; G < 3; ++G)
      RT.heap().allocPrimArray(PrimType::Int, 16 + (I % 5) * 8);
  }

  for (int Cycle = 0; Cycle < 5; ++Cycle) {
    GcResult Result = RT.gc().collect();
    if (Cycle == 0) {
      EXPECT_EQ(Result.ObjectsFreed, 120u);
    }
    const auto &Roots = Scope.roots();
    ASSERT_EQ(Roots.size(), 40u);
    for (size_t I = 0; I < Roots.size(); ++I)
      ASSERT_EQ(static_cast<uint32_t>(rt::arrayData<int32_t>(Roots[I])[7]),
                Expected[I])
          << "cycle " << Cycle << " object " << I;
  }
  RT.detachCurrentThread();
}

} // namespace

//===- rt_gc_test.cpp - Mark-sweep GC behaviour ---------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Runtime.h"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

RuntimeConfig baseConfig() {
  RuntimeConfig C;
  C.Heap.CapacityBytes = 8 << 20;
  return C;
}

TEST(RtGc, RootedObjectsSurvive) {
  Runtime RT(baseConfig());
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    ObjectHeader *Rooted = RT.newPrimArray(Scope, PrimType::Int, 16);
    ObjectHeader *Unrooted = RT.heap().allocPrimArray(PrimType::Int, 16);

    GcResult Result = RT.gc().collect();
    EXPECT_EQ(Result.ObjectsFreed, 1u);
    EXPECT_TRUE(RT.heap().isLiveObject(Rooted));
    EXPECT_FALSE(RT.heap().isLiveObject(Unrooted));
  }
  RT.detachCurrentThread();
}

TEST(RtGc, ScopeExitUnroots) {
  Runtime RT(baseConfig());
  RT.attachCurrentThread("main");
  ObjectHeader *Obj;
  {
    HandleScope Scope(RT);
    Obj = RT.newPrimArray(Scope, PrimType::Int, 16);
    RT.gc().collect();
    EXPECT_TRUE(RT.heap().isLiveObject(Obj));
  }
  RT.gc().collect();
  EXPECT_FALSE(RT.heap().isLiveObject(Obj));
  RT.detachCurrentThread();
}

TEST(RtGc, PinnedObjectsAreNotSwept) {
  // JNI Get* pins; the GC must not reclaim memory native code holds.
  Runtime RT(baseConfig());
  RT.attachCurrentThread("main");
  ObjectHeader *Obj = RT.heap().allocPrimArray(PrimType::Int, 16);
  Obj->pin();
  RT.gc().collect();
  EXPECT_TRUE(RT.heap().isLiveObject(Obj));
  Obj->unpin();
  RT.gc().collect();
  EXPECT_FALSE(RT.heap().isLiveObject(Obj));
  RT.detachCurrentThread();
}

TEST(RtGc, VerifyPassReadsEveryPayload) {
  RuntimeConfig C = baseConfig();
  C.Gc.VerifyObjectBodies = true;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  HandleScope Scope(RT);
  for (int I = 0; I < 10; ++I)
    RT.newPrimArray(Scope, PrimType::Long, 100);
  GcResult Result = RT.gc().collect();
  EXPECT_EQ(Result.ObjectsVerified, 10u);
  EXPECT_EQ(Result.PayloadBytesVerified, 10u * 800u);
  RT.detachCurrentThread();
}

TEST(RtGc, CriticalSectionBlocksCollection) {
  Runtime RT(baseConfig());
  RT.attachCurrentThread("main");

  RT.enterCritical();
  std::atomic<bool> GcDone{false};
  std::thread Gc([&] {
    RT.gc().collect();
    GcDone.store(true);
  });

  // The collector must be stuck waiting for the critical section.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(GcDone.load());

  RT.exitCritical();
  Gc.join();
  EXPECT_TRUE(GcDone.load());
  RT.detachCurrentThread();
}

TEST(RtGc, ReentrantCriticalDoesNotDeadlock) {
  Runtime RT(baseConfig());
  RT.attachCurrentThread("main");
  RT.enterCritical();
  RT.enterCritical(); // nested
  EXPECT_EQ(RT.criticalDepth(), 2u);
  RT.exitCritical();
  RT.exitCritical();
  EXPECT_EQ(RT.criticalDepth(), 0u);
  RT.gc().collect(); // must not hang
  RT.detachCurrentThread();
}

TEST(RtGc, BackgroundThreadCollects) {
  RuntimeConfig C = baseConfig();
  C.Gc.BackgroundThread = true;
  C.Gc.IntervalMillis = 1;
  Runtime RT(C);
  RT.attachCurrentThread("main");

  // Allocate garbage; the background thread should reclaim it.
  for (int I = 0; I < 50; ++I)
    RT.heap().allocPrimArray(PrimType::Int, 64);

  for (int Spin = 0; Spin < 200 && RT.heap().stats().ObjectsLive > 0;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(RT.heap().stats().ObjectsLive, 0u);
  EXPECT_GT(RT.gc().completedCycles(), 0u);
  RT.detachCurrentThread();
}

TEST(RtGc, StartStopIdempotent) {
  RuntimeConfig C = baseConfig();
  Runtime RT(C);
  RT.gc().start();
  RT.gc().start(); // second start is a no-op
  RT.gc().stop();
  RT.gc().stop(); // second stop is a no-op
}

TEST(RtGc, AllocationFailureTriggersCollectAndRetry) {
  // Like ART: the factory path collects once before giving up.
  RuntimeConfig C;
  C.Heap.CapacityBytes = 1 << 20; // 1 MiB heap
  Runtime RT(C);
  RT.attachCurrentThread("main");
  {
    // Fill the heap with garbage (unrooted).
    HandleScope Temp(RT);
    while (RT.heap().allocPrimArray(PrimType::Long, 1024) != nullptr) {
    }
  }
  {
    // The direct heap call fails...
    EXPECT_EQ(RT.heap().allocPrimArray(PrimType::Long, 1024), nullptr);
    // ...but the runtime factory reclaims the garbage and succeeds.
    HandleScope Scope(RT);
    EXPECT_NE(RT.newPrimArray(Scope, PrimType::Long, 1024), nullptr);
  }
  RT.detachCurrentThread();
}

TEST(RtGc, FreeListMemoryIsReusedAfterGc) {
  Runtime RT(baseConfig());
  RT.attachCurrentThread("main");
  ObjectHeader *Garbage = RT.heap().allocPrimArray(PrimType::Int, 256);
  uint64_t Addr = reinterpret_cast<uint64_t>(Garbage);
  RT.gc().collect();
  ObjectHeader *Reused = RT.heap().allocPrimArray(PrimType::Int, 256);
  EXPECT_EQ(reinterpret_cast<uint64_t>(Reused), Addr);
  RT.detachCurrentThread();
}

} // namespace

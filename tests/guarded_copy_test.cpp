//===- guarded_copy_test.cpp - The guarded-copy baseline -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/guarded/GuardedCopy.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/Logging.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using namespace mte4jni;
using guarded::GuardedCopyOptions;
using guarded::GuardedCopyPolicy;

class GuardedCopyTest : public ::testing::Test {
protected:
  void SetUp() override { mte::MteSystem::instance().reset(); }
  void TearDown() override { mte::MteSystem::instance().reset(); }

  jni::JniBufferInfo infoFor(std::vector<uint8_t> &Payload) {
    jni::JniBufferInfo Info;
    Info.DataBegin = reinterpret_cast<uint64_t>(Payload.data());
    Info.Bytes = Payload.size();
    Info.Interface = "TestInterface";
    return Info;
  }
};

TEST_F(GuardedCopyTest, AcquireCopiesPayload) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(64);
  for (size_t I = 0; I < 64; ++I)
    Payload[I] = static_cast<uint8_t>(I);

  bool IsCopy = false;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  EXPECT_TRUE(IsCopy);
  auto *Copy = reinterpret_cast<uint8_t *>(Bits);
  EXPECT_NE(Copy, Payload.data());
  EXPECT_EQ(std::memcmp(Copy, Payload.data(), 64), 0);
  Policy.release(infoFor(Payload), Bits, 0);
  EXPECT_TRUE(mte::MteSystem::instance().faultLog().empty());
}

TEST_F(GuardedCopyTest, CopyBackOnRelease) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  reinterpret_cast<uint8_t *>(Bits)[5] = 0xAA;
  Policy.release(infoFor(Payload), Bits, 0);
  EXPECT_EQ(Payload[5], 0xAA);
}

TEST_F(GuardedCopyTest, JniAbortSkipsCopyBack) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  reinterpret_cast<uint8_t *>(Bits)[5] = 0xAA;
  Policy.release(infoFor(Payload), Bits, jni::JNI_ABORT);
  EXPECT_EQ(Payload[5], 0x00) << "JNI_ABORT discards modifications";
}

TEST_F(GuardedCopyTest, OverflowDetectedWithOffset) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(72, 0); // 18 ints, like Figure 3
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  // Write at "index 21": byte offset 84.
  reinterpret_cast<uint8_t *>(Bits)[84] = 0x41;
  Policy.release(infoFor(Payload), Bits, 0);

  auto Faults = mte::MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].Kind, mte::FaultKind::GuardedCopyCorruption);
  EXPECT_NE(Faults[0].Description.find("offset 84"), std::string::npos)
      << Faults[0].Description;
  EXPECT_NE(Faults[0].Description.find("overflow"), std::string::npos);
  EXPECT_EQ(Policy.stats().CorruptionsDetected, 1u);
}

TEST_F(GuardedCopyTest, UnderflowDetectedWithNegativeOffset) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  reinterpret_cast<uint8_t *>(Bits)[-3] = 0x41; // 3 bytes before payload
  Policy.release(infoFor(Payload), Bits, 0);

  auto Faults = mte::MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_NE(Faults[0].Description.find("underflow"), std::string::npos);
  EXPECT_NE(Faults[0].Description.find("-3"), std::string::npos)
      << Faults[0].Description;
}

TEST_F(GuardedCopyTest, WriteBeyondRedZoneIsMissed) {
  GuardedCopyOptions Options;
  Options.RedZoneBytes = 64;
  GuardedCopyPolicy Policy(Options);
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  // §2.3 limitation: skipping past the red zone is invisible. Write into
  // our own decoy so the test itself is memory-safe.
  static volatile uint8_t Decoy[1];
  Decoy[0] = 1;
  volatile uint8_t Readback = Decoy[0];
  (void)Readback;
  Policy.release(infoFor(Payload), Bits, 0);
  EXPECT_TRUE(mte::MteSystem::instance().faultLog().empty());
}

TEST_F(GuardedCopyTest, ReadsAreInvisible) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  volatile uint8_t Oob = reinterpret_cast<uint8_t *>(Bits)[40]; // OOB read
  (void)Oob;
  Policy.release(infoFor(Payload), Bits, 0);
  EXPECT_TRUE(mte::MteSystem::instance().faultLog().empty());
}

TEST_F(GuardedCopyTest, BogusReleasePointerReported) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  uint8_t Bogus[8];
  Policy.release(infoFor(Payload), reinterpret_cast<uint64_t>(Bogus), 0);
  EXPECT_EQ(mte::MteSystem::instance().faultLog().countOf(
                mte::FaultKind::JniCheckError),
            1u);
}

TEST_F(GuardedCopyTest, JniCommitKeepsBlockAlive) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  reinterpret_cast<uint8_t *>(Bits)[0] = 7;
  Policy.release(infoFor(Payload), Bits, jni::JNI_COMMIT);
  EXPECT_EQ(Payload[0], 7) << "committed";
  // Buffer still usable and releasable.
  reinterpret_cast<uint8_t *>(Bits)[0] = 9;
  Policy.release(infoFor(Payload), Bits, 0);
  EXPECT_EQ(Payload[0], 9);
  EXPECT_TRUE(mte::MteSystem::instance().faultLog().empty());
}

TEST_F(GuardedCopyTest, ScratchBuffersVerified) {
  GuardedCopyPolicy Policy;
  uint64_t Bits = Policy.acquireScratch(24, "GetStringUTFChars");
  auto *Buf = reinterpret_cast<uint8_t *>(Bits);
  std::memset(Buf, 'x', 24); // in-bounds fill is fine
  Buf[30] = 1;               // overflow into the back red zone
  Policy.releaseScratch(Bits, 24, "ReleaseStringUTFChars");
  EXPECT_EQ(mte::MteSystem::instance().faultLog().countOf(
                mte::FaultKind::GuardedCopyCorruption),
            1u);
}

TEST_F(GuardedCopyTest, AbortAfterModifyLogsWarning) {
  support::LogBuffer::clear();
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(32, 0);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
  reinterpret_cast<uint8_t *>(Bits)[1] = 0x55; // modify...
  Policy.release(infoFor(Payload), Bits, jni::JNI_ABORT); // ...then abort
  bool SawWarning = false;
  for (const auto &R : support::LogBuffer::snapshot())
    if (R.Severity == support::LogSeverity::Warn &&
        R.Message.find("JNI_ABORT") != std::string::npos)
      SawWarning = true;
  EXPECT_TRUE(SawWarning);
  support::LogBuffer::clear();
}

TEST_F(GuardedCopyTest, StatsAccumulate) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload(100, 0);
  bool IsCopy;
  for (int I = 0; I < 5; ++I) {
    uint64_t Bits = Policy.acquire(infoFor(Payload), IsCopy);
    Policy.release(infoFor(Payload), Bits, 0);
  }
  auto Stats = Policy.stats();
  EXPECT_EQ(Stats.Acquires, 5u);
  EXPECT_EQ(Stats.Releases, 5u);
  EXPECT_EQ(Stats.BytesCopied, 5u * 100u * 2u); // in + out
}

TEST_F(GuardedCopyTest, ZeroLengthPayload) {
  GuardedCopyPolicy Policy;
  std::vector<uint8_t> Payload;
  jni::JniBufferInfo Info;
  Info.DataBegin = 0;
  Info.Bytes = 0;
  Info.Interface = "Test";
  bool IsCopy;
  uint64_t Bits = Policy.acquire(Info, IsCopy);
  EXPECT_NE(Bits, 0u);
  Policy.release(Info, Bits, jni::JNI_ABORT);
  EXPECT_TRUE(mte::MteSystem::instance().faultLog().empty());
}

} // namespace

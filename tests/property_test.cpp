//===- property_test.cpp - Property-based sweeps --------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Randomised/parameterised invariants:
//
//   * detection truth table: any access outside an array's granule-rounded
//     extent faults under MTE4JNI+Sync (against a quiet heap); accesses in
//     the sub-granule slack are the documented 16-byte-granularity blind
//     spot;
//   * every primitive type's one-past-the-end access is caught;
//   * random acquire/release interleavings preserve the tag-table
//     invariants (held => granule tag matches; all-released => tags clear);
//   * random in-bounds native work is fault-free and value-coherent under
//     every scheme.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"
#include "mte4jni/support/Rng.h"

#include <gtest/gtest.h>

#include <map>

namespace {

using namespace mte4jni;

// ---- OOB offset truth table --------------------------------------------------

class OobOffsetProperty : public ::testing::TestWithParam<int> {};

TEST_P(OobOffsetProperty, DetectionMatchesGranuleModel) {
  const int ByteOffset = GetParam(); // relative to payload start

  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  // A pad object first, so negative probe offsets still land inside the
  // PROT_MTE heap (otherwise they'd be legitimately unchecked, like
  // non-MTE memory on hardware).
  (void)Main.env().NewIntArray(Scope, 64);
  constexpr jni::jsize kLen = 18; // 72 payload bytes; granule extent 80
  jni::jarray Array = Main.env().NewIntArray(Scope, kLen);
  const uint64_t PayloadBytes = Array->dataBytes();
  const uint64_t GranuleExtent =
      support::alignTo(PayloadBytes, mte::kGranuleSize);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "probe", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env()
                 .GetPrimitiveArrayCritical(Array, &IsCopy)
                 .cast<jni::jbyte>();
    volatile jni::jbyte V = mte::load<jni::jbyte>(P + ByteOffset);
    (void)V;
    Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(),
                                             jni::JNI_ABORT);
    return 0;
  });

  bool InBounds = ByteOffset >= 0 &&
                  ByteOffset < static_cast<int>(PayloadBytes);
  bool InTaggedExtent = ByteOffset >= 0 &&
                        ByteOffset < static_cast<int>(GranuleExtent);
  uint64_t Faults = S.faults().countOf(mte::FaultKind::TagMismatchSync);
  if (InBounds) {
    EXPECT_EQ(Faults, 0u) << "in-bounds access must not fault";
  } else if (InTaggedExtent) {
    // The documented MTE granularity blind spot: OOB within the final
    // partially-used granule shares the array's own tag.
    EXPECT_EQ(Faults, 0u);
  } else {
    EXPECT_EQ(Faults, 1u)
        << "byte offset " << ByteOffset << " must be detected";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, OobOffsetProperty,
    ::testing::Values(-64, -16, -1, 0, 1, 35, 71,        // before/inside
                      72, 75, 79,                         // sub-granule slack
                      80, 84, 100, 128, 256, 4096),       // detectable OOB
    [](const auto &Info) {
      int V = Info.param;
      return std::string(V < 0 ? "minus_" : "plus_") +
             std::to_string(V < 0 ? -V : V);
    });

// ---- per-primitive-type detection ---------------------------------------------

class PrimTypeProperty : public ::testing::TestWithParam<rt::PrimType> {};

TEST_P(PrimTypeProperty, OnePastTheEndIsCaught) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  constexpr uint32_t kLen = 16;
  jni::jarray Array =
      S.runtime().newPrimArray(Scope, GetParam(), kLen);
  ASSERT_NE(Array, nullptr);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "probe", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetPrimitiveArrayCritical(Array, &IsCopy);
    // One full granule past the tagged extent: always a different tag.
    uint64_t Skip =
        support::alignTo(Array->dataBytes(), mte::kGranuleSize) +
        mte::kGranuleSize;
    volatile uint8_t V = mte::load<uint8_t>(
        P.cast<uint8_t>() + static_cast<ptrdiff_t>(Skip));
    (void)V;
    Main.env().ReleasePrimitiveArrayCritical(Array, P, jni::JNI_ABORT);
    return 0;
  });
  EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u)
      << rt::primTypeName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPrimTypes, PrimTypeProperty,
    ::testing::Values(rt::PrimType::Boolean, rt::PrimType::Byte,
                      rt::PrimType::Char, rt::PrimType::Short,
                      rt::PrimType::Int, rt::PrimType::Long,
                      rt::PrimType::Float, rt::PrimType::Double),
    [](const auto &Info) {
      return std::string(rt::primTypeName(Info.param));
    });

// ---- random acquire/release interleavings -------------------------------------

class AllocatorFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorFuzz, InterleavingsPreserveInvariants) {
  mte::MteSystem::instance().reset();
  {
    mte::TaggedArena Arena(1 << 20);
    core::TagAllocator Alloc(core::LockScheme::TwoTier, 16);
    support::Xoshiro256 Rng(GetParam());

    constexpr int kObjects = 24;
    struct Obj {
      uint64_t Begin;
      uint64_t Bytes;
      int Holders = 0;
      mte::TagValue Tag = 0;
    };
    std::vector<Obj> Objects;
    for (int I = 0; I < kObjects; ++I) {
      uint64_t Bytes = 16u << Rng.nextBelow(6); // 16..512
      Objects.push_back(
          {reinterpret_cast<uint64_t>(Arena.allocate(Bytes)), Bytes});
    }

    for (int Step = 0; Step < 4000; ++Step) {
      Obj &O = Objects[Rng.nextBelow(kObjects)];
      if (O.Holders == 0 || Rng.nextBool(0.5)) {
        uint64_t Bits = Alloc.acquire(O.Begin, O.Begin + O.Bytes);
        mte::TagValue Tag = mte::pointerTagOf(Bits);
        if (O.Holders > 0) {
          ASSERT_EQ(Tag, O.Tag) << "joining holder must share the tag";
        }
        O.Tag = Tag;
        ++O.Holders;
      } else {
        Alloc.release(O.Begin, O.Begin + O.Bytes);
        --O.Holders;
      }

      // Invariant: held objects carry their tag on every granule;
      // released objects are tag-0.
      if (Step % 97 == 0) {
        for (const Obj &Check : Objects) {
          mte::TagValue Expected = Check.Holders > 0 ? Check.Tag : 0;
          for (uint64_t G = 0; G < Check.Bytes; G += mte::kGranuleSize)
            ASSERT_EQ(mte::ldgTag(Check.Begin + G), Expected);
        }
      }
    }

    // Drain and verify the all-clear state.
    for (Obj &O : Objects)
      while (O.Holders-- > 0)
        Alloc.release(O.Begin, O.Begin + O.Bytes);
    for (const Obj &O : Objects)
      for (uint64_t G = 0; G < O.Bytes; G += mte::kGranuleSize)
        ASSERT_EQ(mte::ldgTag(O.Begin + G), 0);
  }
  mte::MteSystem::instance().reset();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

// ---- random in-bounds native work is transparent -------------------------------

class SchemeTransparency : public ::testing::TestWithParam<api::Scheme> {};

TEST_P(SchemeTransparency, RandomInBoundsWorkIsCleanAndCoherent) {
  api::SessionConfig C;
  C.Protection = GetParam();
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  support::Xoshiro256 Rng(99);

  jni::jarray Array = Main.env().NewIntArray(Scope, 128);
  std::vector<jni::jint> Model(128, 0);

  for (int Round = 0; Round < 60; ++Round) {
    rt::callNative(Main.thread(), rt::NativeKind::Regular, "mutate", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(Array, &IsCopy);
      for (int Op = 0; Op < 32; ++Op) {
        uint32_t Index = static_cast<uint32_t>(Rng.nextBelow(128));
        jni::jint Value = static_cast<jni::jint>(Rng.next());
        mte::store<jni::jint>(P + Index, Value);
        Model[Index] = Value;
        EXPECT_EQ(mte::load<jni::jint>(P + Index), Value);
      }
      Main.env().ReleaseIntArrayElements(Array, P, 0);
      return 0;
    });
  }
  mte::simulatedSyscall("getuid");

  EXPECT_EQ(S.faults().totalCount(), 0u)
      << api::schemeName(GetParam());
  const auto *Data = rt::arrayData<jni::jint>(Array);
  for (int I = 0; I < 128; ++I)
    ASSERT_EQ(Data[I], Model[I]) << "index " << I;
}

// ---- sync/async parity ---------------------------------------------------------

class SyncAsyncParity : public ::testing::TestWithParam<int> {};

TEST_P(SyncAsyncParity, SameGroundTruthBothModes) {
  // For any OOB offset, sync and async must agree on WHETHER a violation
  // happened and on its ground-truth address — they differ only in when
  // and how it is reported.
  const int Index = GetParam();
  uint64_t SyncAddr = 0, AsyncAddr = 0;
  uint64_t SyncCount = 0, AsyncCount = 0;

  for (api::Scheme Scheme :
       {api::Scheme::Mte4JniSync, api::Scheme::Mte4JniAsync}) {
    api::SessionConfig C;
    C.Protection = Scheme;
    C.Seed = 3;
    api::Session S(C);
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    (void)Main.env().NewIntArray(Scope, 64); // pad
    jni::jarray Array = Main.env().NewIntArray(Scope, 18);

    rt::callNative(Main.thread(), rt::NativeKind::Regular, "probe", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env()
                   .GetPrimitiveArrayCritical(Array, &IsCopy)
                   .cast<jni::jint>();
      volatile jni::jint V = mte::load<jni::jint>(P + Index);
      (void)V;
      Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(),
                                               jni::JNI_ABORT);
      return 0;
    });
    mte::simulatedSyscall("getuid");

    auto Faults = S.faults().snapshot();
    if (Scheme == api::Scheme::Mte4JniSync) {
      SyncCount = Faults.size();
      if (!Faults.empty())
        SyncAddr = Faults[0].DebugAddress;
    } else {
      AsyncCount = Faults.size();
      if (!Faults.empty())
        AsyncAddr = Faults[0].DebugAddress;
    }
  }

  EXPECT_EQ(SyncCount, AsyncCount) << "modes disagree on detection";
  if (SyncCount > 0) {
    // Same object layout (same seeds, same allocation sequence): the
    // ground-truth addresses must coincide.
    EXPECT_EQ(SyncAddr, AsyncAddr);
  }
}

INSTANTIATE_TEST_SUITE_P(Indices, SyncAsyncParity,
                         ::testing::Values(0, 17, 19, 21, 64, 256, -4),
                         [](const auto &Info) {
                           int V = Info.param;
                           return std::string(V < 0 ? "m" : "p") +
                                  std::to_string(V < 0 ? -V : V);
                         });

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTransparency,
    ::testing::Values(api::Scheme::NoProtection, api::Scheme::GuardedCopy,
                      api::Scheme::Mte4JniSync, api::Scheme::Mte4JniAsync),
    [](const auto &Info) {
      std::string Name = api::schemeName(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace

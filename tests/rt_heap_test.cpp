//===- rt_heap_test.cpp - Mini-ART heap allocator -------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/rt/Heap.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using rt::HeapConfig;
using rt::JavaHeap;
using rt::ObjectHeader;
using rt::PrimType;

class RtHeapTest : public ::testing::Test {
protected:
  void SetUp() override { mte::MteSystem::instance().reset(); }
  void TearDown() override { mte::MteSystem::instance().reset(); }
};

TEST_F(RtHeapTest, AllocatesZeroedArrays) {
  HeapConfig Config;
  Config.CapacityBytes = 1 << 20;
  JavaHeap Heap(Config);
  ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, 100);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->kind(), rt::ObjectKind::PrimArray);
  EXPECT_EQ(Obj->elemType(), PrimType::Int);
  EXPECT_EQ(Obj->Length, 100u);
  EXPECT_EQ(Obj->dataBytes(), 400u);
  const auto *Data = rt::arrayData<int32_t>(Obj);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Data[I], 0);
}

TEST_F(RtHeapTest, AlignmentEight) {
  HeapConfig Config;
  Config.Alignment = 8;
  JavaHeap Heap(Config);
  for (int I = 0; I < 32; ++I) {
    ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Byte, 1);
    EXPECT_EQ(reinterpret_cast<uint64_t>(Obj) % 8, 0u);
  }
  // With 8-byte alignment, 1-byte arrays are 24-byte allocations, so at
  // least some consecutive objects share a 16-byte granule.
  HeapConfig C2;
  C2.Alignment = 8;
  JavaHeap H2(C2);
  ObjectHeader *A = H2.allocPrimArray(PrimType::Byte, 1);
  ObjectHeader *B = H2.allocPrimArray(PrimType::Byte, 1);
  uint64_t EndA = A->dataEnd();
  uint64_t BeginB = reinterpret_cast<uint64_t>(B);
  EXPECT_LT(BeginB - EndA, 16u) << "objects should pack tightly at 8-byte "
                                   "alignment";
}

TEST_F(RtHeapTest, AlignmentSixteen) {
  HeapConfig Config;
  Config.Alignment = 16;
  JavaHeap Heap(Config);
  for (int I = 0; I < 32; ++I) {
    ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Byte, 3);
    EXPECT_EQ(reinterpret_cast<uint64_t>(Obj) % 16, 0u);
    // Payload starts right after the 16-byte header: granule-aligned.
    EXPECT_EQ(Obj->dataAddress() % 16, 0u);
  }
}

TEST_F(RtHeapTest, ProtMteRegistersRegion) {
  HeapConfig Config;
  Config.ProtMte = true;
  Config.CapacityBytes = 1 << 20;
  {
    JavaHeap Heap(Config);
    ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, 4);
    EXPECT_TRUE(mte::MteSystem::instance().isTaggedAddress(
        Obj->dataAddress()));
  }
  EXPECT_EQ(mte::MteSystem::instance().regions()->size(), 0u);
}

TEST_F(RtHeapTest, FreeListReuseAfterFree) {
  JavaHeap Heap(HeapConfig{});
  ObjectHeader *A = Heap.allocPrimArray(PrimType::Int, 64);
  uint64_t Addr = reinterpret_cast<uint64_t>(A);
  Heap.free(A);
  ObjectHeader *B = Heap.allocPrimArray(PrimType::Int, 64);
  EXPECT_EQ(reinterpret_cast<uint64_t>(B), Addr);
  EXPECT_EQ(Heap.stats().FreeListHits, 1u);
}

TEST_F(RtHeapTest, OutOfMemoryReturnsNull) {
  HeapConfig Config;
  Config.CapacityBytes = 4096;
  JavaHeap Heap(Config);
  EXPECT_EQ(Heap.allocPrimArray(PrimType::Long, 1 << 20), nullptr);
  // Heap still usable afterwards.
  EXPECT_NE(Heap.allocPrimArray(PrimType::Int, 8), nullptr);
}

TEST_F(RtHeapTest, StatsTrackLiveness) {
  JavaHeap Heap(HeapConfig{});
  ObjectHeader *A = Heap.allocPrimArray(PrimType::Int, 10);
  ObjectHeader *B = Heap.allocPrimArray(PrimType::Int, 10);
  auto S1 = Heap.stats();
  EXPECT_EQ(S1.ObjectsLive, 2u);
  EXPECT_EQ(S1.ObjectsAllocated, 2u);
  Heap.free(A);
  auto S2 = Heap.stats();
  EXPECT_EQ(S2.ObjectsLive, 1u);
  EXPECT_EQ(S2.ObjectsFreed, 1u);
  EXPECT_LT(S2.BytesLive, S1.BytesLive);
  (void)B;
}

TEST_F(RtHeapTest, ForEachObjectSeesLiveOnly) {
  JavaHeap Heap(HeapConfig{});
  ObjectHeader *A = Heap.allocPrimArray(PrimType::Int, 4);
  ObjectHeader *B = Heap.allocPrimArray(PrimType::Int, 4);
  Heap.free(A);
  int Count = 0;
  ObjectHeader *Seen = nullptr;
  Heap.forEachObject([&](ObjectHeader *Obj) {
    ++Count;
    Seen = Obj;
  });
  EXPECT_EQ(Count, 1);
  EXPECT_EQ(Seen, B);
  EXPECT_FALSE(Heap.isLiveObject(A));
  EXPECT_TRUE(Heap.isLiveObject(B));
}

TEST_F(RtHeapTest, ContainsChecksBounds) {
  JavaHeap Heap(HeapConfig{});
  ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, 4);
  EXPECT_TRUE(Heap.contains(Obj));
  int Local;
  EXPECT_FALSE(Heap.contains(&Local));
}

TEST_F(RtHeapTest, StringsAllocated) {
  JavaHeap Heap(HeapConfig{});
  ObjectHeader *Str = Heap.allocString(5);
  ASSERT_NE(Str, nullptr);
  EXPECT_EQ(Str->kind(), rt::ObjectKind::String);
  EXPECT_EQ(Str->Length, 5u);
  EXPECT_EQ(Str->dataBytes(), 10u);
}

TEST_F(RtHeapTest, HeaderIsExactlyOneGranule) {
  EXPECT_EQ(sizeof(ObjectHeader), 16u);
}

} // namespace

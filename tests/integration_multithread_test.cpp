//===- integration_multithread_test.cpp - Concurrency end-to-end ---------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The §3.1 multi-threading claims, end-to-end through the JNI surface:
// concurrent holders of one array share a tag and never fault; disjoint
// arrays don't interfere; both lock schemes are correct; mixed
// readers/writers stay coherent; and a misbehaving thread is still caught
// while well-behaved threads run concurrently.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/support/StringUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace {

using namespace mte4jni;

struct MtParams {
  api::Scheme Protection;
  core::LockScheme Locks;
};

class MultithreadTest : public ::testing::TestWithParam<MtParams> {};

TEST_P(MultithreadTest, ConcurrentReadersOfOneArrayAreClean) {
  api::SessionConfig C;
  C.Protection = GetParam().Protection;
  C.Locks = GetParam().Locks;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  jni::jarray Array = Main.env().NewIntArray(Scope, 512);
  auto *Data = rt::arrayData<jni::jint>(Array);
  for (int I = 0; I < 512; ++I)
    Data[I] = I * 3;

  std::atomic<uint64_t> Total{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&S, Array, &Total] {
      api::ScopedAttach Me(S, "reader");
      uint64_t Local = 0;
      for (int I = 0; I < kIters; ++I) {
        Local += rt::callNative(
            Me.thread(), rt::NativeKind::Regular, "read", [&] {
              jni::jboolean IsCopy;
              auto P = Me.env().GetIntArrayElements(Array, &IsCopy);
              uint64_t Sum = 0;
              for (int K = 0; K < 512; ++K)
                Sum += static_cast<uint32_t>(mte::load<jni::jint>(P + K));
              Me.env().ReleaseIntArrayElements(Array, P, jni::JNI_ABORT);
              return Sum;
            });
      }
      Total.fetch_add(Local);
    });
  }
  for (auto &T : Threads)
    T.join();
  mte::simulatedSyscall("getuid");

  EXPECT_EQ(S.faults().totalCount(), 0u);
  // Every read saw the full, correct array.
  uint64_t PerIter = 0;
  for (int I = 0; I < 512; ++I)
    PerIter += static_cast<uint32_t>(I * 3);
  EXPECT_EQ(Total.load(), PerIter * kThreads * kIters);
}

TEST_P(MultithreadTest, DisjointArraysDoNotInterfere) {
  api::SessionConfig C;
  C.Protection = GetParam().Protection;
  C.Locks = GetParam().Locks;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  constexpr int kThreads = 6;
  std::vector<jni::jarray> Arrays;
  for (int T = 0; T < kThreads; ++T)
    Arrays.push_back(Main.env().NewIntArray(Scope, 256));

  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&S, &Arrays, &Failures, T] {
      api::ScopedAttach Me(S, "writer");
      jni::jarray Mine = Arrays[static_cast<size_t>(T)];
      for (int I = 0; I < 200; ++I) {
        rt::callNative(Me.thread(), rt::NativeKind::Regular, "write", [&] {
          jni::jboolean IsCopy;
          auto P = Me.env().GetIntArrayElements(Mine, &IsCopy);
          for (int K = 0; K < 256; ++K)
            mte::store<jni::jint>(P + K, T * 1000 + K);
          Me.env().ReleaseIntArrayElements(Mine, P, 0);
          return 0;
        });
      }
      // After all writes, my array must contain exactly my values.
      const auto *Data = rt::arrayData<jni::jint>(Mine);
      for (int K = 0; K < 256; ++K)
        if (Data[K] != T * 1000 + K)
          ++Failures;
    });
  }
  for (auto &T : Threads)
    T.join();
  mte::simulatedSyscall("getuid");

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(S.faults().totalCount(), 0u);
}

TEST_P(MultithreadTest, OneBadThreadAmongGoodOnes) {
  if (GetParam().Protection == api::Scheme::NoProtection)
    GTEST_SKIP() << "baseline detects nothing by design";

  api::SessionConfig C;
  C.Protection = GetParam().Protection;
  C.Locks = GetParam().Locks;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jarray Good = Main.env().NewIntArray(Scope, 256);
  jni::jarray Victim = Main.env().NewIntArray(Scope, 16);

  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T) {
    Threads.emplace_back([&S, Good] {
      api::ScopedAttach Me(S, "good");
      for (int I = 0; I < 100; ++I) {
        rt::callNative(Me.thread(), rt::NativeKind::Regular, "good", [&] {
          jni::jboolean IsCopy;
          auto P = Me.env().GetIntArrayElements(Good, &IsCopy);
          for (int K = 0; K < 256; ++K)
            mte::store<jni::jint>(P + K, K);
          Me.env().ReleaseIntArrayElements(Good, P, 0);
          return 0;
        });
      }
    });
  }
  Threads.emplace_back([&S, Victim] {
    api::ScopedAttach Me(S, "bad");
    rt::callNative(Me.thread(), rt::NativeKind::Regular, "bad", [&] {
      jni::jboolean IsCopy;
      auto P = Me.env().GetIntArrayElements(Victim, &IsCopy);
      if (Me.session().policy().exposesDirectPointers())
        mte::store<jni::jint>(P + 64, 1); // OOB under MTE schemes
      else
        mte::store<jni::jint>(P + 20, 1); // into the red zone
      Me.env().ReleaseIntArrayElements(Victim, P, 0);
      return 0;
    });
  });
  for (auto &T : Threads)
    T.join();
  mte::simulatedSyscall("getuid");

  EXPECT_GE(S.faults().totalCount(), 1u) << "the bad thread must be caught";
}

std::string mtParamName(
    const ::testing::TestParamInfo<MtParams> &Info) {
  std::string Name = api::schemeName(Info.param.Protection);
  Name += Info.param.Locks == core::LockScheme::TwoTier ? "_twotier"
                                                        : "_global";
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndLocks, MultithreadTest,
    ::testing::Values(
        MtParams{api::Scheme::NoProtection, core::LockScheme::TwoTier},
        MtParams{api::Scheme::GuardedCopy, core::LockScheme::TwoTier},
        MtParams{api::Scheme::Mte4JniSync, core::LockScheme::TwoTier},
        MtParams{api::Scheme::Mte4JniSync, core::LockScheme::GlobalLock},
        MtParams{api::Scheme::Mte4JniAsync, core::LockScheme::TwoTier},
        MtParams{api::Scheme::Mte4JniAsync, core::LockScheme::GlobalLock}),
    mtParamName);

} // namespace

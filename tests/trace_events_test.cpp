//===- trace_events_test.cpp - The systrace-style recorder ----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/TraceEvents.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using support::ScopedTrace;
using support::TraceEvent;
using support::TraceRecorder;

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::clear();
    TraceRecorder::setEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::setEnabled(false);
    TraceRecorder::clear();
  }
};

TEST_F(TraceTest, SlicesRecordNameCategoryAndDuration) {
  {
    ScopedTrace Outer("outer", "test");
    ScopedTrace Inner("inner", "test");
  }
  auto Events = TraceRecorder::snapshot();
  ASSERT_EQ(Events.size(), 2u);
  // Inner closes first.
  EXPECT_STREQ(Events[0].Name, "inner");
  EXPECT_STREQ(Events[1].Name, "outer");
  EXPECT_GE(Events[1].DurationMicros, Events[0].DurationMicros);
  EXPECT_LE(Events[1].StartMicros, Events[0].StartMicros);
}

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder::setEnabled(false);
  {
    ScopedTrace T("ignored", "test");
  }
  support::TraceRecorder::recordCounter("ignored", 1);
  EXPECT_EQ(TraceRecorder::size(), 0u);
}

// Regression: ScopedTrace must capture the enabled flag ONCE at
// construction. The seed checked enabled() again in the destructor via a
// StartMicros==0 sentinel, so a scope that straddled a setEnabled toggle
// either recorded a garbage-duration slice (enabled mid-scope) or silently
// vanished (disabled mid-scope).
TEST_F(TraceTest, ScopedTraceCapturesEnabledAtConstruction) {
  // Disabled at construction, enabled mid-scope: records nothing.
  TraceRecorder::setEnabled(false);
  {
    ScopedTrace T("toggled_on_mid_scope", "test");
    TraceRecorder::setEnabled(true);
  }
  EXPECT_EQ(TraceRecorder::size(), 0u);

  // Enabled at construction, disabled mid-scope: records exactly one
  // well-formed slice anyway — the capture already started.
  TraceRecorder::setEnabled(true);
  {
    ScopedTrace T("toggled_off_mid_scope", "test");
    TraceRecorder::setEnabled(false);
  }
  auto Events = TraceRecorder::snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "toggled_off_mid_scope");
}

TEST_F(TraceTest, CountersRecorded) {
  TraceRecorder::recordCounter("tag_table_entries", 7);
  auto Events = TraceRecorder::snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].EventKind, TraceEvent::Kind::Counter);
  EXPECT_EQ(Events[0].Value, 7);
}

TEST_F(TraceTest, ChromeJsonShape) {
  {
    ScopedTrace T("slice_a", "cat_x");
  }
  TraceRecorder::recordCounter("count_b", 42);
  std::string Json = TraceRecorder::exportChromeJson();
  EXPECT_NE(Json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"slice_a\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"cat_x\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\":42"), std::string::npos);
  EXPECT_EQ(Json.back(), '}');
}

TEST_F(TraceTest, InstrumentedStackEmitsJniAndGcSlices) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 64);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "traced", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(A, &IsCopy);
    Main.env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });
  S.runtime().gc().collect();

  bool SawGet = false, SawRelease = false, SawGc = false, SawTag = false;
  for (const TraceEvent &E : TraceRecorder::snapshot()) {
    SawGet |= std::string_view(E.Name) == "JNI.Get";
    SawRelease |= std::string_view(E.Name) == "JNI.Release";
    SawGc |= std::string_view(E.Name) == "GC.collect";
    SawTag |= std::string_view(E.Name) == "TagAllocator.acquire";
  }
  EXPECT_TRUE(SawGet);
  EXPECT_TRUE(SawRelease);
  EXPECT_TRUE(SawGc);
  EXPECT_TRUE(SawTag);
}

TEST_F(TraceTest, BoundedBufferNeverGrowsPastCap) {
  for (int I = 0; I < 70000; ++I)
    TraceRecorder::recordCounter("spam", I);
  EXPECT_LE(TraceRecorder::size(), size_t(1) << 16);
}

TEST_F(TraceTest, DroppedEventsAreCountedAndExported) {
  EXPECT_EQ(TraceRecorder::dropped(), 0u);
  constexpr size_t kCap = size_t(1) << 16;
  constexpr size_t kOverfill = kCap + 123;
  for (size_t I = 0; I < kOverfill; ++I)
    TraceRecorder::recordCounter("spam", static_cast<int64_t>(I));
  EXPECT_EQ(TraceRecorder::size(), kCap);
  EXPECT_EQ(TraceRecorder::dropped(), kOverfill - kCap);

  // Exported trace carries the drop count so viewers see truncation.
  std::string Json = TraceRecorder::exportChromeJson();
  EXPECT_NE(Json.find("\"droppedEvents\":123"), std::string::npos) << Json;

  // Mirrored into the metrics registry for snapshot()/exporters.
  EXPECT_GE(support::Metrics::snapshot().counterValue(
                "support/trace/dropped_events"),
            kOverfill - kCap);

  // clear() resets the drop counter along with the buffer.
  TraceRecorder::clear();
  EXPECT_EQ(TraceRecorder::dropped(), 0u);
}

} // namespace

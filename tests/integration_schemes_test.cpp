//===- integration_schemes_test.cpp - The §5.2 effectiveness matrix ----------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end reproduction of the paper's §5.2 experiment: a native method
// obtains an 18-int Java array via GetPrimitiveArrayCritical and writes at
// index 21 (Figure 3). The detection behaviour of each scheme must match
// the paper:
//
//   no protection  — nothing detected
//   guarded copy   — detected at Release, with the corruption offset,
//                    backtrace pointing at the runtime abort (Figure 4a);
//                    OOB *reads* and far writes that skip the red zone are
//                    missed (§2.3 limitations)
//   MTE4JNI sync   — detected at the faulting access, precise address and
//                    backtrace naming the native method (Figure 4b)
//   MTE4JNI async  — detected at the next syscall, no address (Figure 4c)
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/MteSystem.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using api::Scheme;
using api::ScopedAttach;
using api::Session;
using api::SessionConfig;

/// Runs Figure 3's buggy native method under the given session: obtains a
/// pointer to ArrayLen ints and writes at WriteIndex.
void runOverflowNative(ScopedAttach &Main, jni::jarray Array,
                       int WriteIndex) {
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto Elems = Main.env()
                     .GetPrimitiveArrayCritical(Array, &IsCopy)
                     .cast<jni::jint>();
    mte::store<jni::jint>(Elems + WriteIndex, 0x41414141);
    Main.env().ReleasePrimitiveArrayCritical(Array, Elems.cast<void>(), 0);
    return 0;
  });
}

SessionConfig configFor(Scheme S) {
  SessionConfig C;
  C.Protection = S;
  C.HeapBytes = 8ull << 20;
  return C;
}

TEST(SchemesTest, NoProtectionMissesEverything) {
  Session S(configFor(Scheme::NoProtection));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  runOverflowNative(Main, Array, 21);
  EXPECT_EQ(S.faults().totalCount(), 0u) << "baseline must stay silent";
}

TEST(SchemesTest, GuardedCopyDetectsWriteAtRelease) {
  Session S(configFor(Scheme::GuardedCopy));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  runOverflowNative(Main, Array, 21);

  auto Faults = S.faults().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  const auto &F = Faults[0];
  EXPECT_EQ(F.Kind, mte::FaultKind::GuardedCopyCorruption);
  // The reported offset: index 21 of a jint array = byte offset 84,
  // payload is 72 bytes.
  EXPECT_NE(F.Description.find("84"), std::string::npos) << F.Description;
  EXPECT_NE(F.Description.find("overflow"), std::string::npos);
  // Figure 4a: the trace points at the runtime's abort path, not at the
  // native method that misbehaved.
  ASSERT_FALSE(F.Backtrace.empty());
  EXPECT_STREQ(F.Backtrace[0].Function, "art::Runtime::Abort");
}

TEST(SchemesTest, GuardedCopyMissesReads) {
  Session S(configFor(Scheme::GuardedCopy));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_oob_read",
                 [&] {
                   jni::jboolean IsCopy;
                   auto Elems = Main.env()
                                    .GetPrimitiveArrayCritical(Array, &IsCopy)
                                    .cast<jni::jint>();
                   // OOB read: never changes the red zone.
                   volatile jni::jint V = mte::load<jni::jint>(Elems + 21);
                   (void)V;
                   Main.env().ReleasePrimitiveArrayCritical(
                       Array, Elems.cast<void>(), 0);
                   return 0;
                 });
  EXPECT_EQ(S.faults().totalCount(), 0u) << "§2.3: reads are invisible";
}

TEST(SchemesTest, GuardedCopyMissesWritesBeyondRedZone) {
  SessionConfig C = configFor(Scheme::GuardedCopy);
  C.GuardedRedZoneBytes = 256;
  Session S(C);
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  // Scribble into our own decoy buffer placed past the red zone, via an
  // offset that skips it entirely (72B payload + 256B red zone < 4 KiB).
  static thread_local volatile char Decoy[1 << 16];
  (void)Decoy;
  rt::callNative(
      Main.thread(), rt::NativeKind::Regular, "test_far_write", [&] {
        jni::jboolean IsCopy;
        auto Elems = Main.env()
                         .GetPrimitiveArrayCritical(Array, &IsCopy)
                         .cast<jni::jint>();
        // The guarded copy is on the C heap; a "far" OOB from it lands in
        // unrelated memory. Simulate by writing to the decoy — the point
        // is the red zone sees nothing.
        Decoy[0] = 1;
        volatile char Readback = Decoy[0];
        (void)Readback;
        Main.env().ReleasePrimitiveArrayCritical(Array, Elems.cast<void>(),
                                                 0);
        return 0;
      });
  EXPECT_EQ(S.faults().totalCount(), 0u)
      << "§2.3: accesses skipping the red zones are invisible";
}

TEST(SchemesTest, MteSyncDetectsAtFaultingAccess) {
  Session S(configFor(Scheme::Mte4JniSync));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  runOverflowNative(Main, Array, 21);

  auto Faults = S.faults().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  const auto &F = Faults[0];
  EXPECT_EQ(F.Kind, mte::FaultKind::TagMismatchSync);
  EXPECT_TRUE(F.HasAddress);
  // Precise faulting address: payload + 21*4 bytes.
  EXPECT_EQ(F.Address, Array->dataAddress() + 21 * sizeof(jni::jint));
  EXPECT_TRUE(F.IsWrite);
  // Figure 4b: the top frame names the native method itself.
  ASSERT_FALSE(F.Backtrace.empty());
  EXPECT_STREQ(F.Backtrace[0].Function, "test_ofb");
}

TEST(SchemesTest, MteSyncDetectsReadsToo) {
  Session S(configFor(Scheme::Mte4JniSync));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_oob_read",
                 [&] {
                   jni::jboolean IsCopy;
                   auto Elems = Main.env()
                                    .GetPrimitiveArrayCritical(Array, &IsCopy)
                                    .cast<jni::jint>();
                   volatile jni::jint V = mte::load<jni::jint>(Elems + 21);
                   (void)V;
                   Main.env().ReleasePrimitiveArrayCritical(
                       Array, Elems.cast<void>(), 0);
                   return 0;
                 });
  auto Faults = S.faults().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_FALSE(Faults[0].IsWrite);
}

TEST(SchemesTest, MteSyncDetectsFarWrites) {
  Session S(configFor(Scheme::Mte4JniSync));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);
  // A far write that would skip any red zone but stays inside the
  // PROT_MTE heap: caught, because the victim granules carry tag 0 (or a
  // different object's tag).
  runOverflowNative(Main, Array, 4096);
  EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u);
}

TEST(SchemesTest, MteAsyncDetectsAtNextSyscall) {
  Session S(configFor(Scheme::Mte4JniAsync));
  ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto Elems = Main.env()
                     .GetPrimitiveArrayCritical(Array, &IsCopy)
                     .cast<jni::jint>();
    mte::store<jni::jint>(Elems + 21, 0x42424242);
    // Latched but not delivered yet.
    EXPECT_EQ(S.faults().totalCount(), 0u);
    // Figure 4c: the first syscall after the corruption delivers it.
    mte::simulatedSyscall("getuid");
    EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchAsync), 1u);
    Main.env().ReleasePrimitiveArrayCritical(Array, Elems.cast<void>(), 0);
    return 0;
  });

  auto Faults = S.faults().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_FALSE(Faults[0].HasAddress) << "async reports carry no address";
  EXPECT_EQ(Faults[0].DeliveredAtSyscall, "getuid");
}

TEST(SchemesTest, InBoundsAccessIsCleanUnderAllSchemes) {
  for (Scheme Sch : {Scheme::NoProtection, Scheme::GuardedCopy,
                     Scheme::Mte4JniSync, Scheme::Mte4JniAsync}) {
    Session S(configFor(Sch));
    ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    jni::jarray Array = Main.env().NewIntArray(Scope, 64);

    rt::callNative(Main.thread(), rt::NativeKind::Regular, "fill", [&] {
      jni::jboolean IsCopy;
      auto Elems = Main.env()
                       .GetIntArrayElements(Array, &IsCopy);
      for (int I = 0; I < 64; ++I)
        mte::store<jni::jint>(Elems + I, I * 3);
      Main.env().ReleaseIntArrayElements(Array, Elems, 0);
      return 0;
    });
    mte::simulatedSyscall("getuid"); // flush any async latch

    EXPECT_EQ(S.faults().totalCount(), 0u) << api::schemeName(Sch);
    // Data visible from the Java side regardless of copy-back vs direct.
    const jni::jint *Data = rt::arrayData<jni::jint>(Array);
    for (int I = 0; I < 64; ++I)
      ASSERT_EQ(Data[I], I * 3) << api::schemeName(Sch);
  }
}

TEST(SchemesTest, HeapAlignmentFollowsScheme) {
  {
    Session S(configFor(Scheme::NoProtection));
    EXPECT_EQ(S.runtime().heap().config().Alignment, 8u);
    EXPECT_FALSE(S.runtime().heap().config().ProtMte);
  }
  {
    Session S(configFor(Scheme::Mte4JniSync));
    EXPECT_EQ(S.runtime().heap().config().Alignment, 16u);
    EXPECT_TRUE(S.runtime().heap().config().ProtMte);
  }
}

} // namespace

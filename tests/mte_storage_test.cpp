//===- mte_storage_test.cpp - Shadow regions and the MteSystem ----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TagStorage.h"

#include <gtest/gtest.h>

#include <memory>

namespace {

using namespace mte4jni::mte;

class MteStorageTest : public ::testing::Test {
protected:
  void SetUp() override { MteSystem::instance().reset(); }
  void TearDown() override { MteSystem::instance().reset(); }
};

TEST_F(MteStorageTest, RegionTagsStartZero) {
  alignas(16) static uint8_t Buf[256];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), 256);
  EXPECT_EQ(Region.granuleCount(), 16u);
  for (int G = 0; G < 16; ++G)
    EXPECT_EQ(Region.tagAt(Region.begin() + G * 16), 0);
}

TEST_F(MteStorageTest, SetAndReadSingleGranule) {
  alignas(16) static uint8_t Buf[64];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), 64);
  Region.setTagAt(Region.begin() + 17, 0xC); // mid-granule address
  EXPECT_EQ(Region.tagAt(Region.begin() + 16), 0xC);
  EXPECT_EQ(Region.tagAt(Region.begin() + 31), 0xC);
  EXPECT_EQ(Region.tagAt(Region.begin() + 32), 0);
}

TEST_F(MteStorageTest, SetTagRangeClampsToRegion) {
  alignas(16) static uint8_t Buf[64];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), 64);
  // Range extends past the end: only in-region granules written.
  uint64_t Written =
      Region.setTagRange(Region.begin() + 32, Region.end() + 128, 5);
  EXPECT_EQ(Written, 2u);
  EXPECT_EQ(Region.tagAt(Region.begin() + 32), 5);
  EXPECT_EQ(Region.tagAt(Region.begin() + 48), 5);
  EXPECT_EQ(Region.tagAt(Region.begin()), 0);
}

TEST_F(MteStorageTest, TwoLevelGeometry) {
  // 16 granules: one (short) line, 8 packed bytes — half the seed's
  // byte-per-granule footprint.
  alignas(16) static uint8_t Buf[256];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), 256);
  EXPECT_EQ(Region.shadowBytes(), 8u);
  EXPECT_EQ(Region.summaryBytes(), 1u);
  EXPECT_EQ(Region.lineCount(), 1u);

  // Whole-region fill publishes a Uniform summary even for a short line;
  // a narrower write demotes it.
  Region.setTagRange(Region.begin(), Region.end(), 0xB);
  EXPECT_EQ(Region.lineSummaries()[0], 0xB);
  Region.setTagAt(Region.begin(), 0xB);
  EXPECT_EQ(Region.lineSummaries()[0], kSummaryMixed);
  EXPECT_EQ(Region.findMismatch(0, 15, 0xB), UINT64_MAX);
  // The full-line scan proved the line uniform and lazily re-promoted it.
  EXPECT_EQ(Region.lineSummaries()[0], 0xB);
}

TEST_F(MteStorageTest, FindMismatch) {
  alignas(16) static uint8_t Buf[128];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), 128);
  Region.setTagRange(Region.begin(), Region.end(), 7);
  EXPECT_EQ(Region.findMismatch(0, 7, 7), UINT64_MAX);
  Region.setTagAt(Region.begin() + 5 * 16, 3);
  EXPECT_EQ(Region.findMismatch(0, 7, 7), 5u);
  EXPECT_EQ(Region.findMismatch(0, 4, 7), UINT64_MAX);
  EXPECT_EQ(Region.findMismatch(6, 7, 7), UINT64_MAX);
}

TEST_F(MteStorageTest, SystemRegisterAndLookup) {
  alignas(16) static uint8_t BufA[256];
  alignas(16) static uint8_t BufB[256];
  MteSystem &Sys = MteSystem::instance();
  Sys.registerRegion(BufA, 256);
  Sys.registerRegion(BufB, 256);

  EXPECT_TRUE(Sys.isTaggedAddress(reinterpret_cast<uint64_t>(BufA) + 100));
  EXPECT_TRUE(Sys.isTaggedAddress(reinterpret_cast<uint64_t>(BufB)));
  EXPECT_FALSE(Sys.isTaggedAddress(0x1234));

  const RegionList *Regions = Sys.regions();
  EXPECT_EQ(Regions->size(), 2u);
  EXPECT_NE(Regions->find(reinterpret_cast<uint64_t>(BufA)), nullptr);

  Sys.unregisterRegion(BufA);
  EXPECT_FALSE(Sys.isTaggedAddress(reinterpret_cast<uint64_t>(BufA)));
  EXPECT_TRUE(Sys.isTaggedAddress(reinterpret_cast<uint64_t>(BufB)));
  Sys.unregisterRegion(BufB);
}

TEST_F(MteStorageTest, MemoryTagAtOutsideRegionsIsZero) {
  EXPECT_EQ(MteSystem::instance().memoryTagAt(0xDEADBEEF), 0);
}

TEST_F(MteStorageTest, ResetClearsEverything) {
  alignas(16) static uint8_t Buf[64];
  MteSystem &Sys = MteSystem::instance();
  Sys.registerRegion(Buf, 64);
  Sys.setProcessCheckMode(CheckMode::Sync);
  Sys.setIrgExcludeMask(0x00FF);
  FaultRecord R;
  Sys.faultLog().append(std::move(R));

  Sys.reset();
  EXPECT_EQ(Sys.regions()->size(), 0u);
  EXPECT_EQ(Sys.processCheckMode(), CheckMode::None);
  EXPECT_EQ(Sys.irgExcludeMask(), 0x0001);
  EXPECT_TRUE(Sys.faultLog().empty());
}

TEST_F(MteStorageTest, FaultLogBounded) {
  MteSystem &Sys = MteSystem::instance();
  for (size_t I = 0; I < FaultLog::kMaxStored + 100; ++I) {
    FaultRecord R;
    R.Kind = FaultKind::TagMismatchSync;
    Sys.faultLog().append(std::move(R));
  }
  EXPECT_EQ(Sys.faultLog().snapshot().size(), FaultLog::kMaxStored);
  EXPECT_EQ(Sys.faultLog().totalCount(), FaultLog::kMaxStored + 100);
  EXPECT_EQ(Sys.faultLog().countOf(FaultKind::TagMismatchSync),
            FaultLog::kMaxStored + 100);
}

TEST_F(MteStorageTest, FaultRecordRendering) {
  FaultRecord R;
  R.Kind = FaultKind::TagMismatchSync;
  R.HasAddress = true;
  R.Address = 0x1234;
  R.PointerTag = 5;
  R.MemoryTag = 0;
  R.IsWrite = true;
  R.AccessSize = 4;
  R.Backtrace = {{"test_ofb", "libapp.so"}};
  std::string Out = R.str();
  EXPECT_NE(Out.find("SEGV_MTESERR"), std::string::npos);
  EXPECT_NE(Out.find("ptr tag 5"), std::string::npos);
  EXPECT_NE(Out.find("test_ofb"), std::string::npos);

  FaultRecord Async;
  Async.Kind = FaultKind::TagMismatchAsync;
  Async.HasAddress = false;
  Async.DeliveredAtSyscall = "getuid";
  std::string AsyncOut = Async.str();
  EXPECT_NE(AsyncOut.find("not available"), std::string::npos);
  EXPECT_NE(AsyncOut.find("getuid"), std::string::npos);
}

} // namespace

//===- server_harness_test.cpp - Tenant server harness tests --------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Covers the tenant-scale server driver (src/server): per-tenant metric
// namespace isolation, snapshot exactness across the sharded registry under
// real multi-threaded load, JSONL stream well-formedness, GC pause export,
// open-loop pacing, and rogue-request fault attribution per scheme.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/server/Server.h"

#include "mte4jni/support/StringUtils.h"
#include "mte4jni/workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

using namespace mte4jni;
using server::RequestMix;
using server::ServerConfig;
using server::ServerResult;
using server::TenantSummary;

class ServerHarnessTest : public ::testing::Test {
protected:
  void SetUp() override { support::Metrics::resetAll(); }
  void TearDown() override { support::Metrics::resetAll(); }
};

ServerConfig quickConfig() {
  ServerConfig C;
  C.NumTenants = 2;
  C.NumWorkers = 4;
  C.DurationMillis = 150;
  C.Seed = 7;
  return C;
}

ServerResult runScheme(api::Scheme Scheme, const ServerConfig &C,
                       bool BackgroundGc = true) {
  api::SessionConfig SC;
  SC.Protection = Scheme;
  SC.BackgroundGc = BackgroundGc;
  SC.HeapBytes = 32 << 20;
  api::Session S(SC);
  return server::runServer(S, C);
}

// ==== per-tenant namespace isolation =======================================

// Every request a tenant's workers serve lands in that tenant's namespace
// and nowhere else; the global aggregate equals the sum over tenants. This
// is the accounting invariant everything else (billing, SLO attribution)
// rests on — and it exercises the sharded registry under >shard-count
// thread churn because each worker records from its own thread.
TEST_F(ServerHarnessTest, TenantNamespacesPartitionTheGlobalCounts) {
  ServerConfig C = quickConfig();
  C.NumTenants = 3;
  C.NumWorkers = 6;
  ServerResult R = runScheme(api::Scheme::NoProtection, C);

  ASSERT_EQ(R.Tenants.size(), 3u);
  EXPECT_GT(R.Requests, 0u);

  uint64_t SumRequests = 0;
  for (const TenantSummary &T : R.Tenants) {
    EXPECT_GT(T.Requests, 0u) << "tenant " << T.Tenant << " starved";
    SumRequests += T.Requests;
  }
  EXPECT_EQ(SumRequests, R.Requests);

  // The per-tenant histograms partition the global one.
  support::MetricsSnapshot Snap = support::Metrics::snapshot();
  const support::HistogramSample *Global =
      Snap.histogram("server/request_nanos");
  ASSERT_NE(Global, nullptr);
  uint64_t SumHistCounts = 0;
  for (unsigned T = 0; T < 3; ++T) {
    const support::HistogramSample *H = Snap.histogram(
        support::format("server/tenant%u/request_nanos", T));
    ASSERT_NE(H, nullptr);
    SumHistCounts += H->Count;
  }
  EXPECT_EQ(SumHistCounts, Global->Count);
  EXPECT_EQ(Global->Count, R.Requests);

  // No stray tenant namespaces beyond the configured count.
  EXPECT_EQ(Snap.counterValue("server/tenant3/requests", 1234u), 1234u);
}

// ==== snapshot exactness under load ========================================

// A snapshot taken after the workers quiesce must be EXACT — the sharded
// registry (exclusive per-thread shards + overflow shard) may relax
// intra-run visibility but not lose updates. More workers than shards
// forces the overflow shard's fetch_add path.
TEST_F(ServerHarnessTest, QuiescentSnapshotIsExactAcrossShards) {
  ServerConfig C = quickConfig();
  C.NumTenants = 4;
  C.NumWorkers = 20; // > kMetricShards=16: overflow shard in play
  C.DurationMillis = 120;
  ServerResult R = runScheme(api::Scheme::NoProtection, C,
                             /*BackgroundGc=*/false);

  support::MetricsSnapshot Snap = support::Metrics::snapshot();
  EXPECT_EQ(Snap.counterValue("server/requests"), R.Requests);
  EXPECT_EQ(Snap.counterValue("server/jni_crossings"), R.JniCrossings);
  uint64_t Sum = 0;
  for (unsigned T = 0; T < 4; ++T)
    Sum += Snap.counterValue(support::format("server/tenant%u/requests", T));
  EXPECT_EQ(Sum, R.Requests);
}

// ==== JSONL stream =========================================================

TEST_F(ServerHarnessTest, StreamProducesOneValidJsonRecordPerLine) {
  std::string Path = ::testing::TempDir() + "server_stream_test.jsonl";
  std::remove(Path.c_str());

  ServerConfig C = quickConfig();
  C.DurationMillis = 300;
  C.StreamPath = Path;
  C.StreamIntervalMillis = 60;
  C.StreamLabel = "unit";
  ServerResult R = runScheme(api::Scheme::NoProtection, C);

  // ~300ms / 60ms interval plus the closing record.
  EXPECT_GE(R.StreamedSnapshots, 2u);

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);

  uint64_t Lines = 0;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t Nl = Text.find('\n', Start);
    ASSERT_NE(Nl, std::string::npos) << "stream must end with a newline";
    std::string Line = Text.substr(Start, Nl - Start);
    // One self-contained object per line: no raw newlines inside, brace
    // balanced, and carrying the expected wrapper fields.
    EXPECT_EQ(Line.front(), '{');
    EXPECT_EQ(Line.back(), '}');
    EXPECT_NE(Line.find("\"seq\": "), std::string::npos);
    EXPECT_NE(Line.find("\"label\": \"unit\""), std::string::npos);
    EXPECT_NE(Line.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(Line.find("server/requests"), std::string::npos);
    int Depth = 0;
    bool InString = false, Escaped = false;
    for (char Ch : Line) {
      if (Escaped) {
        Escaped = false;
        continue;
      }
      if (Ch == '\\')
        Escaped = true;
      else if (Ch == '"')
        InString = !InString;
      else if (!InString && Ch == '{')
        ++Depth;
      else if (!InString && Ch == '}')
        --Depth;
    }
    EXPECT_EQ(Depth, 0) << "unbalanced braces in stream line";
    ++Lines;
    Start = Nl + 1;
  }
  EXPECT_EQ(Lines, R.StreamedSnapshots);
  std::remove(Path.c_str());
}

// ==== GC pause export ======================================================

// With background GC on and allocating requests flowing, the run must leave
// a populated rt/gc/pause_nanos histogram — the signal the server report
// uses to attribute p999 spikes to stop-the-world windows.
TEST_F(ServerHarnessTest, GcPausesLandInPauseHistogram) {
  ServerConfig C = quickConfig();
  C.DurationMillis = 250;
  ServerResult R = runScheme(api::Scheme::Mte4JniSync, C);
  EXPECT_GT(R.Requests, 0u);

  support::MetricsSnapshot Snap = support::Metrics::snapshot();
  const support::HistogramSample *Pause =
      Snap.histogram("rt/gc/pause_nanos");
  ASSERT_NE(Pause, nullptr);
  EXPECT_GT(Pause->Count, 0u);
  // A pause is a superset of its phases: never zero-length, and bounded by
  // the run duration.
  EXPECT_GT(Pause->Min, 0u);
  EXPECT_LT(Pause->Max, uint64_t(60) * 1'000'000'000);
}

// ==== open-loop pacing =====================================================

// At a target rate far below capacity, the server must serve close to
// rate*duration requests (not run closed-loop at full tilt), proving the
// pacer actually waits for scheduled arrivals.
TEST_F(ServerHarnessTest, OpenLoopPacingHoldsTheTargetRate) {
  ServerConfig C = quickConfig();
  C.NumWorkers = 2;
  C.NumTenants = 2;
  C.DurationMillis = 500;
  C.TargetRatePerSec = 400; // closed-loop would serve tens of thousands
  ServerResult R = runScheme(api::Scheme::NoProtection, C,
                             /*BackgroundGc=*/false);
  // Nominal: 200 requests in 0.5s. Generous bounds absorb scheduler noise
  // on loaded CI hosts.
  EXPECT_GT(R.Requests, 60u);
  EXPECT_LT(R.Requests, 500u);
}

// ==== rogue-request fault attribution ======================================

// Rogue near-OOB reads must fault under MTE4JNI, be attributed to the
// tenants that issued them, and match the MTE system's own fault log;
// under no protection the same stream is silent (that is the paper's
// point).
TEST_F(ServerHarnessTest, RogueReadsFaultUnderMteAndAreAttributed) {
  ServerConfig C = quickConfig();
  C.DurationMillis = 250;
  C.Mix.Rogue = 10; // ~10% of requests go out of bounds

  api::SessionConfig SC;
  SC.Protection = api::Scheme::Mte4JniSync;
  SC.BackgroundGc = true;
  SC.HeapBytes = 32 << 20;
  api::Session S(SC);
  ServerResult R = server::runServer(S, C);

  EXPECT_GT(R.Faults, 0u);
  uint64_t TenantFaultSum = 0;
  for (const TenantSummary &T : R.Tenants)
    TenantFaultSum += T.Faults;
  EXPECT_EQ(TenantFaultSum, R.Faults);
  // Every fault the hook attributed is in the MTE system's log, and
  // vice versa (the hook is the only counter, the log the ground truth).
  EXPECT_EQ(S.faults().totalCount(), R.Faults);
}

TEST_F(ServerHarnessTest, RogueReadsAreSilentWithoutProtection) {
  ServerConfig C = quickConfig();
  C.Mix.Rogue = 10;
  ServerResult R = runScheme(api::Scheme::NoProtection, C);
  EXPECT_GT(R.Requests, 0u);
  EXPECT_EQ(R.Faults, 0u);
}

// Checksum invariance: the HTML parse profile must produce scheme-
// independent results like every other workload (schemes detect, never
// alter).
TEST_F(ServerHarnessTest, HtmlStringsProfileIsRegisteredAndDeterministic) {
  std::unique_ptr<workloads::Workload> W =
      workloads::makeWorkload("HTML5 DOM Strings");
  ASSERT_NE(W, nullptr);
  EXPECT_TRUE(W->isJniIntensive());

  uint64_t Sums[2];
  for (int Round = 0; Round < 2; ++Round) {
    api::SessionConfig SC;
    SC.Protection = Round == 0 ? api::Scheme::NoProtection
                               : api::Scheme::Mte4JniSync;
    api::Session S(SC);
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    workloads::WorkloadContext Ctx{S, Main.env(), Main.thread(), Scope, 42};
    std::unique_ptr<workloads::Workload> Fresh =
        workloads::makeWorkload("HTML5 DOM Strings");
    Fresh->prepare(Ctx);
    Sums[Round] = Fresh->run(Ctx);
  }
  EXPECT_EQ(Sums[0], Sums[1]);
}

} // namespace
